open Soqm_vml
module Pool = Soqm_physical.Pool

exception Format_error of string
exception Locked of string

let format_error fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* Where a record lives: head page/slot, plus the pages/slots of its
   overflow continuation parts in chain order (empty for inline
   records). *)
type loc = {
  mutable lpage : int;
  mutable lslot : int;
  mutable lparts : (int * int) array;
}

type t = {
  dir : string;
  schema : Schema.t;
  tagged : bool;
      (* version-2 record layout: tagged records with overflow chains;
         version-1 stores keep the bare layout (and its size limit) *)
  counters : Counters.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  lockfd : Unix.file_descr;
  segments : (string, Segment.t) Hashtbl.t;
  locs : (Oid.t, loc) Hashtbl.t;
  alloc : (string, int) Hashtbl.t;  (* cls -> allocated data pages *)
  fill : (string, int) Hashtbl.t;  (* cls -> current append page *)
  placement : Placement.t;
  hints : (string * int, int) Hashtbl.t;
      (* (cls, root ancestor id) -> page that last took one of the
         root's descendants; the insert-time clustering hint *)
  cfill : (string, int) Hashtbl.t;
      (* cls -> the page new roots pack onto: small sibling groups
         (a document's handful of sections) share it instead of each
         opening a near-empty page of their own; distinct from [fill]
         so unparented inserts never interleave into clusters *)
  roots : (string * int, Oid.t) Hashtbl.t;
      (* (cls, id) -> root ancestor along the placement-parent path
         (paragraph -> section -> document); memoized so resolving a
         child's cluster root costs one lookup, not a record read per
         ancestor *)
  mutable place_by_parent : bool;
  (* columnar side: flagged classes keep their vacuumed base image in a
     [Colseg]; the heap segment holds only post-vacuum DML (heap shadows
     columnar), and [dead] tombstones hide deleted columnar rows *)
  columnar : (string, unit) Hashtbl.t;
  cols : (string, Colseg.t) Hashtbl.t;
  dead : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable next_id : int;
  mutable ckpt_seq : int;
  mutable recovered : int;
  mutable tail_ops : Wal.op list;
  mutable group : Group_commit.t option;
  m : Mutex.t;
}

let meta_magic = "SOQM-DISK"
let meta_version = 2
let meta_file dir = Filename.concat dir "meta"
let wal_file dir = Filename.concat dir "wal"
let lock_file dir = Filename.concat dir "lock"

(* POSIX record lock on [dir/lock]: held for the store's lifetime,
   released by [close] and — crucially — by the kernel when the process
   dies, so a crash never leaves a stale lock behind.  The lock is
   per-process (fcntl semantics), so the same process may reopen the
   directory after [close] (the crash-recovery tests do), while a second
   process fails fast with {!Locked}. *)
let acquire_lock dir =
  let path = lock_file dir in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  try
    Unix.lockf fd Unix.F_TLOCK 0;
    (* record the holder for the error message a second process sees *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
    ignore (Unix.write_substring fd pid 0 (String.length pid));
    fd
  with Unix.Unix_error ((EAGAIN | EACCES), _, _) ->
    let holder =
      try
        let ic = open_in path in
        let line =
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input_line ic)
        in
        Printf.sprintf " (held by pid %s)" (String.trim line)
      with _ -> ""
    in
    Unix.close fd;
    raise
      (Locked
         (Printf.sprintf "%s: database is locked by another process%s" dir
            holder))

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let allocated t cls = Option.value ~default:0 (Hashtbl.find_opt t.alloc cls)

let dead_tbl t cls =
  match Hashtbl.find_opt t.dead cls with
  | Some d -> d
  | None ->
    let d = Hashtbl.create 16 in
    Hashtbl.replace t.dead cls d;
    d

(* A columnar row is live unless tombstoned or shadowed by a heap copy
   (post-vacuum updates re-insert into the heap; the heap always wins). *)
let col_live t cls id =
  (not (Hashtbl.mem (dead_tbl t cls) id))
  && not (Hashtbl.mem t.locs (Oid.make ~cls ~id))

(* ------------------------------------------------------------------ *)
(* meta file                                                           *)
(* ------------------------------------------------------------------ *)

let write_meta ~dir ~version ~schema ~next_id ~columnar ~ckpt_seq =
  let buf = Buffer.create 512 in
  Buffer.add_string buf meta_magic;
  Codec.write_uvarint buf version;
  Codec.write_uvarint buf next_id;
  Codec.write_schema buf schema;
  (* the columnar-class list rides after the schema; metas written before
     columnar segments existed simply end here, which reads as "none" *)
  Codec.write_uvarint buf (List.length columnar);
  List.iter (Codec.write_string buf) (List.sort String.compare columnar);
  (* the checkpoint sequence rides after the columnar list: it stamps
     which checkpoint the derived-state image on disk belongs to *)
  Codec.write_uvarint buf ckpt_seq;
  let tmp = meta_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp (meta_file dir)

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then
    format_error "%s: not a soqm database directory (no meta file)" dir;
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if
    not
      (String.length s >= String.length meta_magic
      && String.equal (String.sub s 0 (String.length meta_magic)) meta_magic)
  then format_error "%s: not a soqm database (bad meta magic)" dir;
  try
    let c = Codec.cursor ~pos:(String.length meta_magic) s in
    let v = Codec.read_uvarint c in
    if v < 1 || v > meta_version then
      format_error "%s: unsupported database version %d (want <= %d)" dir v
        meta_version;
    let next_id = Codec.read_uvarint c in
    let schema = Codec.read_schema c in
    let columnar =
      if Codec.pos c >= String.length s then [] (* pre-columnar meta *)
      else
        let n = Codec.read_uvarint c in
        List.init n (fun _ -> Codec.read_string c)
    in
    let ckpt_seq =
      if Codec.pos c >= String.length s then 0 (* pre-sequence meta *)
      else Codec.read_uvarint c
    in
    (schema, next_id, columnar, v, ckpt_seq)
  with Codec.Corrupt msg -> format_error "%s: corrupt meta file (%s)" dir msg

(* ------------------------------------------------------------------ *)
(* record codec                                                        *)
(* ------------------------------------------------------------------ *)

(* Version-1 records are a bare [uvarint id ∥ props] and must fit one
   page.  Version-2 records are tagged:

     'R' ∥ uvarint id ∥ props-bytes                      inline
     'H' ∥ uvarint id ∥ uvarint nparts ∥ uvarint total ∥ slice   head
     'C' ∥ uvarint id ∥ uvarint seq ∥ slice              continuation

   An oversized record splits its props-bytes across a head and
   [nparts - 1] continuations (seq 1..nparts-1); [total] is the full
   props-bytes length, validated on assembly.  Every part fits a page,
   lifting the per-record size limit. *)

let part_overhead = 16 (* tag + id + nparts/seq + total, conservatively *)
let max_part = Page.capacity - part_overhead

(* Encode one record as the list of page-sized parts to place. *)
let encode_parts t oid props =
  let body = Buffer.create 128 in
  Codec.write_props body props;
  let body = Buffer.contents body in
  if not t.tagged then begin
    let buf = Buffer.create (String.length body + 8) in
    Codec.write_uvarint buf (Oid.id oid);
    Buffer.add_string buf body;
    let r = Buffer.contents buf in
    if String.length r > Page.capacity then
      format_error
        "record %s exceeds the page capacity (%d > %d bytes; overflow chains \
         need a version-%d store)"
        (Oid.to_string oid) (String.length r) Page.capacity meta_version;
    [ r ]
  end
  else begin
    let inline = Buffer.create (String.length body + 8) in
    Buffer.add_char inline 'R';
    Codec.write_uvarint inline (Oid.id oid);
    Buffer.add_string inline body;
    if Buffer.length inline <= Page.capacity then [ Buffer.contents inline ]
    else begin
      let total = String.length body in
      let nparts = (total + max_part - 1) / max_part in
      List.init nparts (fun i ->
          let off = i * max_part in
          let len = min max_part (total - off) in
          let buf = Buffer.create (len + part_overhead) in
          if i = 0 then begin
            Buffer.add_char buf 'H';
            Codec.write_uvarint buf (Oid.id oid);
            Codec.write_uvarint buf nparts;
            Codec.write_uvarint buf total
          end
          else begin
            Buffer.add_char buf 'C';
            Codec.write_uvarint buf (Oid.id oid);
            Codec.write_uvarint buf i
          end;
          Buffer.add_substring buf body off len;
          Buffer.contents buf)
    end
  end

type slot_kind =
  | Inline of int * int  (* id, offset of props bytes *)
  | Head of int * int * int * int  (* id, nparts, total, offset *)
  | Cont of int * int  (* id, seq *)

let parse_slot t s =
  if not t.tagged then
    let c = Codec.cursor s in
    let id = Codec.read_uvarint c in
    Inline (id, Codec.pos c)
  else begin
    if String.length s = 0 then raise (Codec.Corrupt "empty record");
    let c = Codec.cursor ~pos:1 s in
    match s.[0] with
    | 'R' ->
      let id = Codec.read_uvarint c in
      Inline (id, Codec.pos c)
    | 'H' ->
      let id = Codec.read_uvarint c in
      let nparts = Codec.read_uvarint c in
      let total = Codec.read_uvarint c in
      Head (id, nparts, total, Codec.pos c)
    | 'C' ->
      let id = Codec.read_uvarint c in
      let seq = Codec.read_uvarint c in
      Cont (id, seq)
    | tag -> raise (Codec.Corrupt (Printf.sprintf "unknown record tag %c" tag))
  end

let decode_props_at s off = Codec.read_props (Codec.cursor ~pos:off s)

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ~dir ~schema ~tagged ~pool_pages ~counters ~wal ~lockfd =
  let segments = Hashtbl.create 8 in
  List.iter
    (fun cls -> Hashtbl.replace segments cls (Segment.open_seg ~dir ~cls))
    (Schema.class_names schema);
  let read_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.read_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let write_page ~cls ~page buf =
    match Hashtbl.find_opt segments cls with
    | Some s -> Segment.write_page s page buf
    | None -> format_error "%s: no segment for class %s" dir cls
  in
  let pool = Buffer_pool.create ~pages:pool_pages ~counters ~read_page ~write_page in
  let t =
    {
      dir;
      schema;
      tagged;
      counters;
      pool;
      wal;
      lockfd;
      segments;
      locs = Hashtbl.create 1024;
      alloc = Hashtbl.create 8;
      fill = Hashtbl.create 8;
      placement = Placement.derive schema;
      hints = Hashtbl.create 256;
      cfill = Hashtbl.create 8;
      roots = Hashtbl.create 1024;
      place_by_parent = true;
      columnar = Hashtbl.create 4;
      cols = Hashtbl.create 4;
      dead = Hashtbl.create 4;
      next_id = 0;
      ckpt_seq = 0;
      recovered = 0;
      tail_ops = [];
      group = None;
      m = Mutex.create ();
    }
  in
  Hashtbl.iter
    (fun cls seg -> Hashtbl.replace t.alloc cls (Segment.data_pages seg))
    segments;
  t

let create ?(pool_pages = 256) ?counters ~schema dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    format_error "%s: exists and is not a directory" dir;
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* take the directory lock before dropping a previous database: a live
     store in this directory must not lose its files under it *)
  let lockfd = acquire_lock dir in
  (* overwrite semantics: drop any previous database in this directory *)
  Array.iter
    (fun f ->
      if
        String.equal f "meta" || String.equal f "wal"
        || String.equal f "derived.idx"
        || Filename.check_suffix f ".heap"
        || Filename.check_suffix f ".col"
        || Filename.check_suffix f ".dead"
        || Filename.check_suffix f ".tmp"
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, _ = Wal.open_log ~counters (wal_file dir) in
  let t = make ~dir ~schema ~tagged:true ~pool_pages ~counters ~wal ~lockfd in
  write_meta ~dir ~version:meta_version ~schema ~next_id:t.next_id ~columnar:[]
    ~ckpt_seq:0;
  t

(* ------------------------------------------------------------------ *)
(* page placement                                                      *)
(* ------------------------------------------------------------------ *)

(* Place one page-sized part: the clustering hint page first (partially
   filled sibling pages keep taking children until full), then the fill
   page, then a fresh page.  Clustered inserts (a placement parent is
   known) never fall back to the shared fill page — otherwise
   interleaved parents would all funnel into it and siblings would
   never co-locate.  Instead, a root whose hint page has *filled up*
   continues on a fresh page owned by that root (the cluster keeps
   growing contiguously), while a root with *no* hint yet — its first
   descendant — packs onto the per-class cluster-fill page shared by
   young roots.  Without that second tier every small sibling group
   (a document's four sections) would open a near-empty page of its
   own and the heap would balloon to a fraction of a page per root. *)
let place_part t cls ?hint ?(clustered = false) record =
  let len = String.length record in
  let try_page page =
    if page < 1 || page > allocated t cls then None
    else begin
      let data = Buffer_pool.pin t.pool ~cls ~page in
      if Page.has_room data len then begin
        let slot = Page.insert data record in
        Buffer_pool.unpin t.pool ~cls ~page ~dirty:true;
        Some slot
      end
      else begin
        Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
        None
      end
    end
  in
  let hinted =
    match hint with
    | Some p -> (
      match try_page p with Some slot -> Some (p, slot) | None -> None)
    | None -> None
  in
  match hinted with
  | Some placed -> placed
  | None when clustered && Option.is_some hint ->
    (* the root's cluster page filled up: continue it on a fresh page
       owned by the root, leaving both shared pointers alone *)
    let fresh = allocated t cls + 1 in
    Hashtbl.replace t.alloc cls fresh;
    (match try_page fresh with
    | Some slot -> (fresh, slot)
    | None -> assert false)
  | None when clustered -> (
    (* first descendant of a new root: pack onto the cluster-fill page
       (young roots share it until it fills), never the unparented fill *)
    let cfp = Option.value ~default:0 (Hashtbl.find_opt t.cfill cls) in
    match (if cfp >= 1 then try_page cfp else None) with
    | Some slot -> (cfp, slot)
    | None ->
      let fresh = allocated t cls + 1 in
      Hashtbl.replace t.alloc cls fresh;
      Hashtbl.replace t.cfill cls fresh;
      (match try_page fresh with
      | Some slot -> (fresh, slot)
      | None -> assert false))
  | None -> (
    let fillp = Option.value ~default:0 (Hashtbl.find_opt t.fill cls) in
    match (if fillp >= 1 then try_page fillp else None) with
    | Some slot -> (fillp, slot)
    | None ->
      let fresh = allocated t cls + 1 in
      Hashtbl.replace t.alloc cls fresh;
      Hashtbl.replace t.fill cls fresh;
      (match try_page fresh with
      | Some slot -> (fresh, slot)
      | None -> assert false (* an empty page holds any part <= capacity *)))

let delete_record t oid =
  let cls = Oid.cls oid in
  (* tombstone any columnar copy first: once an OID is deleted (or about
     to be replaced), the vacuumed row must never resurrect *)
  (match Hashtbl.find_opt t.cols cls with
  | Some cs when Colseg.mem cs (Oid.id oid) ->
    Hashtbl.replace (dead_tbl t cls) (Oid.id oid) ()
  | _ -> ());
  match Hashtbl.find_opt t.locs oid with
  | None -> ()
  | Some loc ->
    let del page slot =
      let data = Buffer_pool.pin t.pool ~cls ~page in
      Page.delete data slot;
      Buffer_pool.unpin t.pool ~cls ~page ~dirty:true
    in
    del loc.lpage loc.lslot;
    Array.iter (fun (p, s) -> del p s) loc.lparts;
    Hashtbl.remove t.locs oid;
    Hashtbl.remove t.roots (cls, Oid.id oid)

let slot_bytes t cls page slot =
  let data = Buffer_pool.pin t.pool ~cls ~page in
  let r = Page.read data slot in
  Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
  r

(* Reassemble an overflow chain's props bytes from its head record and
   the continuation parts the directory wired up. *)
let assemble t cls loc ~head ~id ~total ~off =
  let buf = Buffer.create total in
  Buffer.add_substring buf head off (String.length head - off);
  Array.iter
    (fun (p, s) ->
      match slot_bytes t cls p s with
      | Some part -> (
        match parse_slot t part with
        | Cont (cid, _) when cid = id ->
          let c = Codec.cursor ~pos:1 part in
          ignore (Codec.read_uvarint c);
          ignore (Codec.read_uvarint c);
          Buffer.add_substring buf part (Codec.pos c)
            (String.length part - Codec.pos c)
        | _ -> raise (Codec.Corrupt "broken overflow chain"))
      | None -> raise (Codec.Corrupt "broken overflow chain"))
    loc.lparts;
  if Buffer.length buf <> total then
    raise (Codec.Corrupt "overflow chain length mismatch");
  Buffer.contents buf

let read_record t oid =
  match Hashtbl.find_opt t.locs oid with
  | None -> (
    (* not in the heap: serve the columnar copy unless tombstoned *)
    let cls = Oid.cls oid in
    match Hashtbl.find_opt t.cols cls with
    | Some cs when not (Hashtbl.mem (dead_tbl t cls) (Oid.id oid)) ->
      Colseg.fetch cs (Oid.id oid)
    | _ -> None)
  | Some loc -> (
    let cls = Oid.cls oid in
    match slot_bytes t cls loc.lpage loc.lslot with
    | None -> None
    | Some s -> (
      match parse_slot t s with
      | Inline (_, off) -> Some (decode_props_at s off)
      | Head (id, _, total, off) ->
        Some (decode_props_at (assemble t cls loc ~head:s ~id ~total ~off) 0)
      | Cont _ -> None (* the directory never points at a continuation *)))

(* Root ancestor along the placement-parent path (paragraph → section →
   document).  Hints are keyed by root, so every descendant of one root
   shares the same cluster pages — keying by the immediate parent would
   open a near-empty page per small sibling group.  Memoized in
   [t.roots]; a miss (first insert after reopen) resolves the chain by
   reading ancestor records, which parent-before-child creation order
   keeps shallow.  The depth bound keeps schema cycles finite. *)
let rec cluster_root t oid depth =
  let cls = Oid.cls oid in
  match Placement.parent_prop t.placement cls with
  | None -> oid
  | Some prop -> (
    let k = (cls, Oid.id oid) in
    match Hashtbl.find_opt t.roots k with
    | Some r -> r
    | None ->
      let r =
        if depth = 0 then oid
        else
          match read_record t oid with
          | Some props -> (
            match List.assoc_opt prop props with
            | Some (Value.Obj p) -> cluster_root t p (depth - 1)
            | _ -> oid)
          | None -> oid
      in
      Hashtbl.replace t.roots k r;
      r)

let insert_record t oid props =
  let cls = Oid.cls oid in
  let parts = encode_parts t oid props in
  let root =
    if t.place_by_parent then
      match Placement.parent_of t.placement ~cls props with
      | Some p -> Some (cluster_root t p 8)
      | None -> None
    else None
  in
  let hint =
    match root with
    | Some r -> Hashtbl.find_opt t.hints (cls, Oid.id r)
    | None -> None
  in
  match parts with
  | [] -> assert false
  | head :: conts ->
    let clustered = Option.is_some root in
    let hpage, hslot = place_part t cls ?hint ~clustered head in
    let lparts =
      Array.of_list (List.map (fun r -> place_part t cls r) conts)
    in
    Hashtbl.replace t.locs oid { lpage = hpage; lslot = hslot; lparts };
    (match root with
    | Some r ->
      Hashtbl.replace t.hints (cls, Oid.id r) hpage;
      Hashtbl.replace t.roots (cls, Oid.id oid) r
    | None -> ());
    t.next_id <- max t.next_id (Oid.id oid + 1)

(* idempotent redo application: an insert of a live OID replaces its
   record, an update of a dead OID creates it, deletes of absent OIDs
   are no-ops — any committed suffix may already be on the pages *)
let apply_op t (op : Wal.op) =
  match op with
  | Wal.Insert { oid; props } ->
    delete_record t oid;
    insert_record t oid props
  | Wal.Update { oid; prop; value; _ } ->
    let props = Option.value ~default:[] (read_record t oid) in
    let props = (prop, value) :: List.remove_assoc prop props in
    delete_record t oid;
    insert_record t oid props
  | Wal.Delete { oid; _ } -> delete_record t oid

let apply t ops =
  locked t (fun () ->
      Wal.commit t.wal ops;
      List.iter (apply_op t) ops)

(* ------------------------------------------------------------------ *)
(* group commit                                                        *)
(* ------------------------------------------------------------------ *)

(* The queue is created on first use; its flush takes the store mutex
   once per {e group}, writes every batch with a single WAL append +
   fsync, then applies them to the pooled pages in commit order. *)
let group t =
  locked t (fun () ->
      match t.group with
      | Some g -> g
      | None ->
        let g =
          Group_commit.create
            ~flush:(fun batches ->
              locked t (fun () ->
                  Wal.commit_many t.wal batches;
                  List.iter (fun ops -> List.iter (apply_op t) ops) batches))
            ()
        in
        t.group <- Some g;
        g)

let enqueue_group t ops = Group_commit.enqueue (group t) ops
let wait_group t ticket = Group_commit.wait (group t) ticket
let apply_group t ops = Group_commit.submit (group t) ops
let set_group_window t w = Group_commit.set_window (group t) w

(* ------------------------------------------------------------------ *)
(* open + recovery                                                     *)
(* ------------------------------------------------------------------ *)

(* Directory rebuild reads raw pages with a scratch buffer (physical
   reconstruction, not query traffic: the pool and its counters stay
   cold for the workload that follows). *)
let rebuild_directory t =
  let scratch = Bytes.create Page.size in
  (* (cls, id, seq) -> continuation part location; wired to the winning
     heads after the sweep *)
  let parts = Hashtbl.create 64 in
  let heads = Hashtbl.create 16 in
  (* a relocated record can appear twice only if a crash hit between
     page writes; the higher page wins deterministically *)
  let wins oid page =
    match Hashtbl.find_opt t.locs oid with
    | Some loc when loc.lpage > page -> false
    | _ -> true
  in
  Hashtbl.iter
    (fun cls seg ->
      for page = 1 to Segment.data_pages seg do
        Segment.read_page seg page scratch;
        if not (Page.is_blank scratch) then
          Page.iter scratch (fun slot record ->
              match parse_slot t record with
              | Inline (id, _) ->
                let oid = Oid.make ~cls ~id in
                if wins oid page then begin
                  Hashtbl.replace t.locs oid
                    { lpage = page; lslot = slot; lparts = [||] };
                  Hashtbl.remove heads oid
                end;
                t.next_id <- max t.next_id (id + 1)
              | Head (id, nparts, _, _) ->
                let oid = Oid.make ~cls ~id in
                if wins oid page then begin
                  Hashtbl.replace t.locs oid
                    { lpage = page; lslot = slot; lparts = [||] };
                  Hashtbl.replace heads oid nparts
                end;
                t.next_id <- max t.next_id (id + 1)
              | Cont (id, seq) ->
                (match Hashtbl.find_opt parts (cls, id, seq) with
                | Some (p, _) when p > page -> ()
                | _ -> Hashtbl.replace parts (cls, id, seq) (page, slot));
                t.next_id <- max t.next_id (id + 1)
              | exception Codec.Corrupt msg ->
                format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page
                  slot msg)
      done)
    t.segments;
  Hashtbl.iter
    (fun oid nparts ->
      match Hashtbl.find_opt t.locs oid with
      | None -> ()
      | Some loc ->
        let cls = Oid.cls oid in
        let ok = ref true in
        let arr =
          Array.init (nparts - 1) (fun i ->
              match Hashtbl.find_opt parts (cls, Oid.id oid, i + 1) with
              | Some ps -> ps
              | None ->
                ok := false;
                (0, 0))
        in
        if !ok then loc.lparts <- arr
        else
          (* torn chain (crash between part writes): treat the record as
             absent; WAL redo reinserts it whole *)
          Hashtbl.remove t.locs oid)
    heads

let open_dir ?(pool_pages = 256) ?counters dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    format_error "%s: not a soqm database directory" dir;
  let schema, meta_next_id, columnar, version, ckpt_seq = read_meta dir in
  let lockfd = acquire_lock dir in
  let counters = Option.value ~default:(Counters.create ()) counters in
  let wal, batches =
    try Wal.open_log ~counters (wal_file dir)
    with e ->
      Unix.close lockfd;
      raise e
  in
  let t =
    make ~dir ~schema ~tagged:(version >= 2) ~pool_pages ~counters ~wal ~lockfd
  in
  t.ckpt_seq <- ckpt_seq;
  (* columnar segments load (and verify) before recovery: WAL redo may
     tombstone or shadow their rows *)
  List.iter
    (fun cls ->
      if not (List.mem cls (Schema.class_names schema)) then
        format_error "%s: columnar flag for unknown class %s" dir cls;
      Hashtbl.replace t.columnar cls ();
      (try Hashtbl.replace t.cols cls (Colseg.load ~counters ~dir ~cls)
       with Colseg.Format_error msg -> format_error "%s" msg);
      try Hashtbl.replace t.dead cls (Colseg.load_dead ~dir ~cls)
      with Colseg.Format_error msg -> format_error "%s" msg)
    columnar;
  rebuild_directory t;
  Hashtbl.iter
    (fun _ cs ->
      Colseg.iter_ids cs (fun id -> t.next_id <- max t.next_id (id + 1)))
    t.cols;
  t.next_id <- max t.next_id meta_next_id;
  (* fill pointers resume at each segment's last page *)
  Hashtbl.iter (fun cls pages -> if pages > 0 then Hashtbl.replace t.fill cls pages) t.alloc;
  List.iter
    (fun ops ->
      List.iter (apply_op t) ops;
      t.recovered <- t.recovered + 1)
    batches;
  t.tail_ops <- List.concat batches;
  t

let columnar_list t =
  Hashtbl.fold (fun cls () acc -> cls :: acc) t.columnar []

let meta_version_of t = if t.tagged then meta_version else 1

(* WAL truncation makes replay unavailable, so everything the WAL was
   covering must be durable first: dirty heap pages, and the columnar
   tombstones accumulated since the last checkpoint.  Each checkpoint
   bumps the sequence the meta file carries, so external structures
   derived from this store (the persistent index image) can tell which
   checkpoint they belong to. *)
let checkpoint_locked t =
  Buffer_pool.flush t.pool;
  Hashtbl.iter (fun _ seg -> Segment.sync seg) t.segments;
  Hashtbl.iter
    (fun cls () -> Colseg.write_dead ~dir:t.dir ~cls (dead_tbl t cls))
    t.columnar;
  t.ckpt_seq <- t.ckpt_seq + 1;
  write_meta ~dir:t.dir ~version:(meta_version_of t) ~schema:t.schema
    ~next_id:t.next_id ~columnar:(columnar_list t) ~ckpt_seq:t.ckpt_seq;
  Wal.truncate t.wal

let checkpoint t = locked t (fun () -> checkpoint_locked t)

let close ?(checkpoint = true) t =
  if checkpoint then locked t (fun () -> checkpoint_locked t);
  Hashtbl.iter (fun _ seg -> Segment.close seg) t.segments;
  Wal.close t.wal;
  Unix.close t.lockfd

(* ------------------------------------------------------------------ *)
(* reads and scans                                                     *)
(* ------------------------------------------------------------------ *)

let fetch t oid =
  locked t (fun () ->
      match read_record t oid with Some props -> props | None -> raise Not_found)

let mem t oid =
  locked t (fun () ->
      Hashtbl.mem t.locs oid
      ||
      let cls = Oid.cls oid in
      match Hashtbl.find_opt t.cols cls with
      | Some cs -> Colseg.mem cs (Oid.id oid) && col_live t cls (Oid.id oid)
      | None -> false)

let extent t cls =
  locked t (fun () ->
      let heap =
        Hashtbl.fold
          (fun oid _ acc ->
            if String.equal (Oid.cls oid) cls then oid :: acc else acc)
          t.locs []
      in
      let rows =
        match Hashtbl.find_opt t.cols cls with
        | None -> heap
        | Some cs ->
          let acc = ref heap in
          Colseg.iter_ids cs (fun id ->
              if col_live t cls id then acc := Oid.make ~cls ~id :: !acc);
          !acc
      in
      List.sort (fun a b -> Int.compare (Oid.id a) (Oid.id b)) rows)

(* One in-order pass over a class's pages through the pool.  [f] runs on
   the caller; with [prefetch] a helper domain pins pages ahead of the
   consumer inside a fixed window, so segment reads overlap decoding.
   The helper only pays off with a second core: on a single-core host
   the domain handoff makes the pass slower than the plain loop, so
   prefetching auto-disables there. *)
let prefetch_window = 8

let prefetch_usable () = Domain.recommended_domain_count () >= 2

let page_pass ?(prefetch = false) t cls ~f =
  let n = allocated t cls in
  if n = 0 then 0
  else begin
    let consume () =
      for page = 1 to n do
        let data = Buffer_pool.pin t.pool ~cls ~page in
        f page data;
        Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
      done
    in
    if (not prefetch) || n <= 2 || not (prefetch_usable ()) then consume ()
    else begin
      let next = Atomic.make 1 in
      let stop = Atomic.make false in
      Pool.run (Pool.global ()) ~jobs:2 (fun w ->
          if w = 0 then
            Fun.protect
              ~finally:(fun () -> Atomic.set stop true)
              (fun () ->
                for page = 1 to n do
                  let data = Buffer_pool.pin t.pool ~cls ~page in
                  f page data;
                  Buffer_pool.unpin t.pool ~cls ~page ~dirty:false;
                  Atomic.set next (page + 1)
                done)
          else
            (* read ahead of the consumer, never past the window *)
            let rec go page =
              if page <= n && not (Atomic.get stop) then
                if page < Atomic.get next + prefetch_window then begin
                  (try
                     ignore (Buffer_pool.pin t.pool ~cls ~page);
                     Buffer_pool.unpin t.pool ~cls ~page ~dirty:false
                   with Failure _ -> ());
                  go (page + 1)
                end
                else begin
                  Domain.cpu_relax ();
                  go page
                end
            in
            go 1)
    end;
    n
  end

(* Run [k] on the record this slot holds iff it is the live copy: the
   directory must point at this page/slot (stale copies of relocated
   records fail that check), and continuation parts are served through
   their head.  [k] gets the decoded props and the bytes decoded. *)
let live_slot t cls page slot record k =
  match parse_slot t record with
  | Cont _ -> ()
  | Inline (id, off) -> (
    let oid = Oid.make ~cls ~id in
    match Hashtbl.find_opt t.locs oid with
    | Some loc when loc.lpage = page && loc.lslot = slot ->
      k oid (decode_props_at record off) (String.length record)
    | _ -> ())
  | Head (id, _, total, off) -> (
    let oid = Oid.make ~cls ~id in
    match Hashtbl.find_opt t.locs oid with
    | Some loc when loc.lpage = page && loc.lslot = slot ->
      let body = assemble t cls loc ~head:record ~id ~total ~off in
      k oid (decode_props_at body 0) (off + total)
    | _ -> ())

let scan ?prefetch t cls =
  let rows = ref [] in
  let pages =
    page_pass ?prefetch t cls ~f:(fun page data ->
        Page.iter data (fun slot record ->
            match
              live_slot t cls page slot record (fun oid props bytes ->
                  Counters.charge_bytes_read t.counters bytes;
                  Counters.charge_values_decoded t.counters
                    (1 + List.length props);
                  rows := (oid, props) :: !rows)
            with
            | () -> ()
            | exception Codec.Corrupt msg ->
              format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page slot
                msg))
  in
  (* merge in the columnar base image (heap shadows and tombstones win) *)
  let pages =
    match Hashtbl.find_opt t.cols cls with
    | None -> pages
    | Some cs ->
      Colseg.iter_rows cs (fun id props ->
          if col_live t cls id then
            rows := (Oid.make ~cls ~id, props) :: !rows);
      pages + ((Colseg.total_bytes cs + Page.size - 1) / Page.size)
  in
  (* page order is insertion order except for relocated (updated) rows;
     sorting by serial restores allocation order exactly *)
  let rows =
    List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b)) !rows
  in
  (rows, pages)

let scan_all ?prefetch t =
  let rows, pages =
    List.fold_left
      (fun (rows, pages) cls ->
        let r, p = scan ?prefetch t cls in
        (r :: rows, pages + p))
      ([], 0)
      (Schema.class_names t.schema)
  in
  let rows =
    List.concat rows
    |> List.sort (fun (a, _) (b, _) -> Int.compare (Oid.id a) (Oid.id b))
  in
  (rows, pages)

let touch_scan ?prefetch t cls = page_pass ?prefetch t cls ~f:(fun _ _ -> ())

(* Per-query scan traffic model: pages driven through the pool plus the
   bytes a scan of this class must decode — whole pages for the
   row-slotted heap, chunk meta (header + oid column + directory) for the
   columnar base image.  Charged to [bytes_read] so mixed workloads
   accumulate a per-format byte picture; [values_decoded] is left to the
   paths that actually decode. *)
let scan_cost ?prefetch t cls =
  let pages = page_pass ?prefetch t cls ~f:(fun _ _ -> ()) in
  let bytes = pages * Page.size in
  let bytes =
    match Hashtbl.find_opt t.cols cls with
    | None -> bytes
    | Some cs -> bytes + Colseg.meta_bytes cs
  in
  if bytes > 0 then Counters.charge_bytes_read t.counters bytes;
  (pages, bytes)

(* Distinct physical units a point-fetch of these OIDs would touch:
   heap pages (overflow parts included) for heap-resident records, the
   containing column chunk for columnar rows.  This is what clustered
   placement moves: the same path query's OID set lands on far fewer
   pages after a clustering vacuum. *)
let locate_pages t oids =
  locked t (fun () ->
      let units = Hashtbl.create 64 in
      List.iter
        (fun oid ->
          let cls = Oid.cls oid in
          match Hashtbl.find_opt t.locs oid with
          | Some loc ->
            Hashtbl.replace units (cls, loc.lpage) ();
            Array.iter
              (fun (p, _) -> Hashtbl.replace units (cls, p) ())
              loc.lparts
          | None -> (
            match Hashtbl.find_opt t.cols cls with
            | Some cs when col_live t cls (Oid.id oid) -> (
              match Colseg.chunk_of cs (Oid.id oid) with
              (* chunks share the page namespace under negative keys *)
              | Some i -> Hashtbl.replace units (cls, -1 - i) ()
              | None -> ())
            | _ -> ()))
        oids;
      Hashtbl.length units)

(* Selective scan: per live row, the values of exactly [props] (argument
   order, [None] = absent).  Columnar classes decode only those columns;
   heap rows must decode whole records — the asymmetry the columnar
   bench gate measures. *)
let scan_columns t cls props =
  let by_id (a, _) (b, _) = Int.compare (Oid.id a) (Oid.id b) in
  let heap = ref [] in
  ignore
    (page_pass t cls ~f:(fun page data ->
         Page.iter data (fun slot record ->
             match
               live_slot t cls page slot record (fun oid rprops bytes ->
                   Counters.charge_bytes_read t.counters bytes;
                   Counters.charge_values_decoded t.counters
                     (1 + List.length rprops);
                   heap :=
                     (oid, List.map (fun p -> List.assoc_opt p rprops) props)
                     :: !heap)
             with
             | () -> ()
             | exception Codec.Corrupt msg ->
               format_error "%s/%s.heap page %d slot %d: %s" t.dir cls page
                 slot msg)));
  let heap = List.sort by_id !heap in
  match Hashtbl.find_opt t.cols cls with
  | None -> heap
  | Some cs ->
    (* chunks and the ids within them are ascending, so collecting in
       reverse and reversing once restores allocation order without the
       O(n log n) sort of the heap path; the liveness probes hoist their
       common case — no tombstones, an empty (freshly vacuumed) heap
       that cannot shadow anything — out of the per-row loop, skipping
       the per-row [Oid] allocation and directory hash *)
    let dead = dead_tbl t cls in
    let no_dead = Hashtbl.length dead = 0 in
    let no_heap = allocated t cls = 0 in
    let acc = ref [] in
    Colseg.iter_columns cs props (fun id vals ->
        if
          (no_dead || not (Hashtbl.mem dead id))
          && (no_heap || not (Hashtbl.mem t.locs (Oid.make ~cls ~id)))
        then acc := (Oid.make ~cls ~id, vals) :: !acc);
    let cols_rows = List.rev !acc in
    if heap == [] then cols_rows else List.merge by_id heap cols_rows

(* ------------------------------------------------------------------ *)
(* vacuum: re-clustering and columnar rewrite                          *)
(* ------------------------------------------------------------------ *)

(* Traversal sort key of a row: ancestor ids root-first (following the
   placement policy's parent edges across classes), own id last, so
   sorting groups children under their parent and parents under theirs.
   Keys are memoized per (class, id); the depth bound keeps schema
   cycles finite. *)
let traversal_keys t cls rows =
  let cache : (string * int, int list) Hashtbl.t =
    Hashtbl.create (2 * List.length rows)
  in
  let rec key kcls id props depth =
    match Hashtbl.find_opt cache (kcls, id) with
    | Some k -> k
    | None ->
      let k =
        if depth = 0 then [ id ]
        else
          match Placement.parent_of t.placement ~cls:kcls props with
          | Some parent -> (
            let pcls = Oid.cls parent and pid = Oid.id parent in
            match
              match Hashtbl.find_opt cache (pcls, pid) with
              | Some pk -> Some pk
              | None ->
                Option.map
                  (fun pprops -> key pcls pid pprops (depth - 1))
                  (locked t (fun () -> read_record t parent))
            with
            | Some pk -> pk @ [ id ]
            | None -> [ id ])
          | None -> [ id ]
      in
      Hashtbl.replace cache (kcls, id) k;
      k
  in
  List.map (fun (oid, props) -> (key cls (Oid.id oid) props 8, (oid, props))) rows

let sort_traversal keyed =
  List.map snd
    (List.sort (fun (a, _) (b, _) -> List.compare Int.compare a b) keyed)

(* Chunk-boundary predicate for the columnar writer: break where the
   parent of row [i] differs from the parent of row [i-1]. *)
let group_breaks t cls rows =
  let parent i =
    let _, props = rows.(i) in
    Placement.parent_of t.placement ~cls props
  in
  fun i ->
    i > 0
    && i < Array.length rows
    && not (Option.equal Oid.equal (parent i) (parent (i - 1)))

(* Rewrite one class columnar: snapshot its live rows, write them as a
   fresh [<cls>.col] (atomic rename), flag the class in [meta], then
   empty the heap segment.  Crash-safe at every boundary: before the
   meta write the flag is absent and the stale [.col] is ignored; after
   it the heap still holds shadow copies with identical content until
   the truncate, and the final checkpoint makes the whole move durable.
   Post-vacuum DML lands in the (now empty) heap and shadows the
   columnar image until the next vacuum folds it in. *)
let vacuum_columnar ?break_before t cls =
  let rows, _ = scan t cls in
  let rows =
    Array.of_list (List.map (fun (oid, props) -> (Oid.id oid, props)) rows)
  in
  locked t (fun () ->
      Colseg.write ?break_before ~dir:t.dir ~cls rows;
      Hashtbl.replace t.columnar cls ();
      (try Hashtbl.replace t.cols cls (Colseg.load ~counters:t.counters ~dir:t.dir ~cls)
       with Colseg.Format_error msg -> format_error "%s" msg);
      Hashtbl.replace t.dead cls (Hashtbl.create 16);
      Colseg.write_dead ~dir:t.dir ~cls (dead_tbl t cls);
      write_meta ~dir:t.dir ~version:(meta_version_of t) ~schema:t.schema
        ~next_id:t.next_id ~columnar:(columnar_list t) ~ckpt_seq:t.ckpt_seq;
      (* the columnar image is durable and flagged: empty the heap *)
      Buffer_pool.drop_class t.pool ~cls;
      (match Hashtbl.find_opt t.segments cls with
      | Some seg -> Segment.reset seg
      | None -> ());
      Hashtbl.replace t.alloc cls 0;
      Hashtbl.remove t.fill cls;
      let stale =
        Hashtbl.fold
          (fun oid _ acc ->
            if String.equal (Oid.cls oid) cls then oid :: acc else acc)
          t.locs []
      in
      List.iter (Hashtbl.remove t.locs) stale;
      checkpoint_locked t);
  Array.length rows

(* Re-clustering heap rewrite: pack the class's live rows into fresh
   page images in traversal order and atomically swap the segment.  The
   WAL tail stays valid across the swap — redo is delete+insert by OID,
   which lands identically on the new image — and a crash before the
   rename leaves the old heap untouched. *)
let vacuum_cluster t cls =
  let rows, _ = scan t cls in
  let keyed =
    List.sort
      (fun (a, _) (b, _) -> List.compare Int.compare a b)
      (traversal_keys t cls rows)
  in
  (* traversal keys are root-first, own id last: the head of a key of
     length >= 2 is the row's cluster-root id, which the rewrite uses to
     seed root-keyed insert hints *)
  let root_ids = Hashtbl.create 1024 in
  List.iter
    (fun (k, (oid, _)) ->
      match k with
      | rid :: _ :: _ -> Hashtbl.replace root_ids (Oid.id oid) rid
      | _ -> ())
    keyed;
  let rows = List.map snd keyed in
  let nrows = List.length rows in
  if not t.tagged then
    format_error "%s: clustering vacuum needs a version-%d store" t.dir
      meta_version;
  (* build the new page images and directory off-line *)
  let pages = ref [] in
  let npages = ref 0 in
  let cur = ref None in
  let fresh () =
    let p = Bytes.create Page.size in
    Page.format p;
    incr npages;
    cur := Some p;
    p
  in
  let flushed () =
    (match !cur with
    | Some p -> pages := p :: !pages
    | None -> ());
    cur := None
  in
  let put part =
    let p = match !cur with Some p -> p | None -> fresh () in
    if Page.has_room p (String.length part) then (!npages, Page.insert p part)
    else begin
      flushed ();
      let p = fresh () in
      (!npages, Page.insert p part)
    end
  in
  let new_locs = Hashtbl.create (2 * nrows) in
  let new_hints = Hashtbl.create 256 in
  List.iter
    (fun (oid, props) ->
      match encode_parts t oid props with
      | [] -> assert false
      | head :: conts ->
        let hpage, hslot = put head in
        let lparts = Array.of_list (List.map put conts) in
        Hashtbl.replace new_locs oid
          { lpage = hpage; lslot = hslot; lparts };
        (match Hashtbl.find_opt root_ids (Oid.id oid) with
        | Some rid -> Hashtbl.replace new_hints (cls, rid) hpage
        | None -> ()))
    rows;
  flushed ();
  let images = Array.of_list (List.rev !pages) in
  locked t (fun () ->
      (* cached images of the old heap must go before the swap: a stale
         dirty page flushed later would corrupt the new file *)
      Buffer_pool.drop_class t.pool ~cls;
      (match Hashtbl.find_opt t.segments cls with
      | Some seg -> Segment.rewrite seg images
      | None -> format_error "%s: no segment for class %s" t.dir cls);
      let stale =
        Hashtbl.fold
          (fun oid _ acc ->
            if String.equal (Oid.cls oid) cls then oid :: acc else acc)
          t.locs []
      in
      List.iter (Hashtbl.remove t.locs) stale;
      Hashtbl.iter (fun oid loc -> Hashtbl.replace t.locs oid loc) new_locs;
      Hashtbl.replace t.alloc cls (Array.length images);
      if Array.length images > 0 then
        Hashtbl.replace t.fill cls (Array.length images)
      else Hashtbl.remove t.fill cls;
      (* old hints point into the dropped image; the rewrite seeds fresh
         ones so post-vacuum DML clusters immediately *)
      let stale_hints =
        Hashtbl.fold
          (fun ((hcls, _) as k) _ acc ->
            if String.equal hcls cls then k :: acc else acc)
          t.hints []
      in
      List.iter (Hashtbl.remove t.hints) stale_hints;
      Hashtbl.iter (fun k p -> Hashtbl.replace t.hints k p) new_hints;
      (* the cluster-fill page was rewritten too; the next new root
         starts a fresh one *)
      Hashtbl.remove t.cfill cls;
      checkpoint_locked t);
  nrows

let vacuum ?(mode = `Columnar) t cls =
  if not (List.mem cls (Schema.class_names t.schema)) then
    format_error "%s: cannot vacuum unknown class %s" t.dir cls;
  match mode with
  | `Columnar -> vacuum_columnar t cls
  | `Cluster ->
    if Hashtbl.mem t.columnar cls then begin
      (* a columnar class re-clusters by rewriting its chunks with
         boundaries aligned to parent-group starts *)
      let rows, _ = scan t cls in
      let sorted = sort_traversal (traversal_keys t cls rows) in
      let arr = Array.of_list sorted in
      ignore arr;
      (* columnar chunks must keep ascending disjoint OID ranges, so the
         rewrite stays in OID order; traversal-created data already has
         OID order = traversal order, and the boundary predicate aligns
         chunk cuts to parent-group starts within it *)
      let rows_arr =
        Array.of_list (List.map (fun (oid, props) -> (oid, props)) rows)
      in
      vacuum_columnar ~break_before:(group_breaks t cls rows_arr) t cls
    end
    else vacuum_cluster t cls

let bulk_load t ~next_id objects =
  locked t (fun () ->
      List.iter (fun (oid, props) -> insert_record t oid props) objects;
      t.next_id <- max t.next_id next_id);
  checkpoint t

(* ------------------------------------------------------------------ *)
(* introspection                                                       *)
(* ------------------------------------------------------------------ *)

let dir t = t.dir
let schema t = t.schema
let counters t = t.counters
let next_id t = t.next_id
let data_pages t cls = allocated t cls
let total_data_pages t = Hashtbl.fold (fun _ n acc -> acc + n) t.alloc 0
let is_columnar t cls = Hashtbl.mem t.columnar cls
let columnar_classes t = List.sort String.compare (columnar_list t)

let columnar_bytes t cls =
  match Hashtbl.find_opt t.cols cls with
  | Some cs -> Colseg.total_bytes cs
  | None -> 0

let columnar_rows t cls =
  match Hashtbl.find_opt t.cols cls with
  | Some cs -> Colseg.row_count cs
  | None -> 0

let columnar_tombstones t cls =
  match Hashtbl.find_opt t.dead cls with
  | Some d -> Hashtbl.length d
  | None -> 0

let overflow_chains t cls =
  locked t (fun () ->
      Hashtbl.fold
        (fun oid loc acc ->
          if String.equal (Oid.cls oid) cls && Array.length loc.lparts > 0 then
            acc + 1
          else acc)
        t.locs 0)

let set_placement t on = t.place_by_parent <- on
let placement_enabled t = t.place_by_parent
let clustering_parent t cls = Placement.parent_prop t.placement cls
let wal_bytes t = Wal.size t.wal
let pool_pages t = Buffer_pool.capacity t.pool
let checkpoint_seq t = t.ckpt_seq
let recovered_batches t = t.recovered
let recovered_ops t = t.tail_ops
