(** The paged disk store: heap segments + WAL + buffer pool + prefetch +
    clustered placement.

    A database directory holds one {!Segment} per schema class
    (type-clustered placement), a [meta] file (magic, format version,
    binary-encoded schema, allocation counter, columnar flags,
    checkpoint sequence) and a [wal].  Records are codec-encoded and
    addressed through an OID → (page, slot) directory rebuilt from the
    page images on open.

    {b Record format (version 2).}  Records are tagged: ['R'] inline
    records hold the whole property list; a record larger than one page
    splits into an ['H'] head plus ['C'] continuation parts — an
    overflow chain — each of which fits a page, lifting the old ~4 KB
    per-record limit.  Version-1 directories (bare untagged records)
    still open read/write with their original size limit.

    {b Clustered placement.}  Inserts place a record on (or near) the
    page of its path-expression parent — the first object-valued
    property with a declared inverse (e.g. [Paragraph.section]) — so a
    parent's children share pages and a path traversal touches few of
    them.  {!vacuum} with [~mode:`Cluster] rewrites a whole class in
    parent-child traversal order (atomically, via a temp segment +
    rename), re-clustering data inserted before the policy could group
    it.  {!locate_pages} measures the effect: distinct pages a set of
    OIDs resolves to.

    Durability protocol: {!apply} appends one Begin/ops/Commit WAL batch
    (fsynced) {e before} touching any page, then applies the operations
    to pooled pages as idempotent upserts/deletes.  Dirty pages reach the
    heap files on pool eviction and on {!checkpoint}, which flushes the
    pool, fsyncs the segments, rewrites [meta] (bumping the checkpoint
    sequence) and truncates the WAL.  {!open_dir} redoes every committed
    WAL batch over the page images and truncates torn tails, so any
    crash point replays to exactly the committed prefix; the replayed
    tail is exposed as {!recovered_ops} so derived structures
    (persistent indexes) can catch up by delta instead of rebuilding.

    Scans read pages in order through the buffer pool; with
    [~prefetch:true] a helper domain from the PR-4 {!Soqm_physical.Pool}
    reads ahead of the consumer inside a small window, overlapping
    segment I/O with record decoding.  Prefetch auto-disables on hosts
    without a second core ({!prefetch_usable}), where the domain handoff
    costs more than it overlaps. *)

open Soqm_vml

exception Format_error of string
(** Missing/foreign/corrupt database directory, or (version-1 stores
    only) a record too large for a 4 KiB page. *)

exception Locked of string
(** The directory's [lock] file is held by another process.  {!create}
    and {!open_dir} take a POSIX record lock on [dir/lock] for the
    store's lifetime; a second process fails fast with this exception
    (the message names the holder's pid).  The kernel drops the lock
    when the holder dies, so a crashed process never wedges the
    database. *)

type t

val create :
  ?pool_pages:int -> ?counters:Counters.t -> schema:Schema.t -> string -> t
(** Initialize a database directory (created if needed; stale database
    files of a previous store in the same directory are removed).
    [pool_pages] sizes the buffer pool (default 256 frames). *)

val open_dir : ?pool_pages:int -> ?counters:Counters.t -> string -> t
(** Open an existing directory: read [meta], rebuild the OID directory
    from the page images, then redo committed WAL batches and truncate
    any torn tail.  @raise Format_error when the directory does not hold
    a database of the supported version. *)

val close : ?checkpoint:bool -> t -> unit
(** Close all files, after a {!checkpoint} unless [~checkpoint:false]. *)

val checkpoint : t -> unit
(** Flush dirty pages, fsync segments, rewrite [meta] (bumping
    {!checkpoint_seq}), truncate the WAL. *)

(** {1 Data} *)

val apply : t -> Wal.op list -> unit
(** Commit one DML batch: WAL append + fsync, then page application. *)

val apply_group : t -> Wal.op list -> unit
(** Commit one DML batch through the group-commit queue
    ({!Group_commit}): concurrent callers coalesce into a single WAL
    write + fsync.  Returns once the batch is durable {e and} applied to
    the pooled pages.  Equivalent to {!apply} for a lone caller. *)

val enqueue_group : t -> Wal.op list -> Group_commit.ticket
(** Reserve the batch's place in the durable order without waiting.
    Call while holding whatever lock serializes commit decisions (the
    transaction manager's commit mutex), so WAL order matches commit
    timestamp order; then release that lock and {!wait_group}. *)

val wait_group : t -> Group_commit.ticket -> unit
(** Block until an enqueued batch is durable and applied, leading the
    flush if no other committer is. *)

val set_group_window : t -> float -> unit
(** Group-commit coalescing window in seconds (default 0): the flush
    leader waits this long for more committers before fsyncing. *)

val fetch : t -> Oid.t -> (string * Value.t) list
(** Read one record through the buffer pool.  @raise Not_found. *)

val mem : t -> Oid.t -> bool

val extent : t -> string -> Oid.t list
(** Live OIDs of a class in allocation order (ascending serial). *)

val scan :
  ?prefetch:bool -> t -> string -> (Oid.t * (string * Value.t) list) list * int
(** Decode a whole class extent in page order, returning records sorted
    by allocation order and the number of pages touched. *)

val scan_all :
  ?prefetch:bool -> t -> (Oid.t * (string * Value.t) list) list * int
(** Every record of every class, in global allocation order — the
    import feed for {!Soqm_vml.Object_store.make_dump}. *)

val touch_scan : ?prefetch:bool -> t -> string -> int
(** Drive a class's page sequence through the buffer pool without
    decoding (the page-traffic model of a full scan over the
    materialized store); returns pages touched.  Charged to the pool
    counters like any other access. *)

val scan_cost : ?prefetch:bool -> t -> string -> int * int
(** {!touch_scan} plus the byte side of the traffic model: [(pages,
    bytes)] where bytes is whole pages for a row-slotted class and chunk
    meta (header + oid column + directory) for a columnar one.  Charges
    the bytes to [Counters.bytes_read] — the [bytes=] column of
    [explain --analyze]. *)

val locate_pages : t -> Oid.t list -> int
(** Distinct physical units a point-fetch of these OIDs would touch:
    heap pages (overflow parts included) for heap-resident records, the
    containing column chunk for columnar rows.  The page-locality
    measure the clustering experiments report — the same path query's
    OID set lands on far fewer units after a clustering vacuum. *)

val scan_columns :
  t -> string -> string list -> (Oid.t * Value.t option list) list
(** Selective scan: per live row, the values of exactly these properties
    (argument order, [None] = absent), sorted by OID serial.  Columnar
    classes decode only the named columns (charging their byte extents);
    row-slotted classes must decode whole records. *)

val vacuum : ?mode:[ `Columnar | `Cluster ] -> t -> string -> int
(** Rewrite one class's base image; returns the rows rewritten.  Both
    modes end with a full {!checkpoint} and are crash-safe (segments are
    replaced atomically; the WAL tail redoes identically over either
    image).

    [`Columnar] (default, the PR-8 behaviour): rewrite the class as a
    columnar segment (dictionary-encoded column chunks) and empty its
    heap; the class is flagged in [meta] so reopens load the columnar
    image.  Subsequent DML lands in the heap and shadows the columnar
    rows until the next vacuum folds it in.

    [`Cluster]: rewrite in parent-child traversal order.  For a heap
    class the pages are repacked so each parent's children are
    contiguous (and overflow chains compacted); for a columnar class the
    chunks are rewritten with boundaries aligned to parent-group starts.
    @raise Format_error for a class not in the schema, or a clustering
    vacuum on a version-1 store. *)

val bulk_load :
  t -> next_id:int -> (Oid.t * (string * Value.t) list) list -> unit
(** Write a base image (no WAL records) and {!checkpoint}.  Used by
    [Db.save] to export an in-memory store. *)

(** {1 Introspection} *)

val dir : t -> string
val schema : t -> Schema.t
val counters : t -> Counters.t
val next_id : t -> int
val data_pages : t -> string -> int
(** Allocated data pages of one class (including pool-resident pages not
    yet flushed). *)

val total_data_pages : t -> int

val is_columnar : t -> string -> bool
(** Whether the class's base image lives in a columnar segment. *)

val columnar_classes : t -> string list

val columnar_bytes : t -> string -> int
(** Chunk payload bytes of the class's columnar segment (0 when not
    columnar). *)

val columnar_rows : t -> string -> int
(** Rows in the columnar base image (including shadowed/tombstoned
    ones). *)

val columnar_tombstones : t -> string -> int
(** Columnar rows deleted since the last vacuum. *)

val overflow_chains : t -> string -> int
(** Heap records of this class currently stored as overflow chains
    (head + continuations) rather than inline. *)

val clustering_parent : t -> string -> string option
(** The property the placement policy clusters this class by (the first
    object-valued property with a declared inverse), if any. *)

val set_placement : t -> bool -> unit
(** Enable/disable parent-hint placement for subsequent inserts
    (enabled by default; the clustering experiments disable it to
    measure the unclustered baseline). *)

val placement_enabled : t -> bool

val prefetch_usable : unit -> bool
(** Whether scan prefetch can help on this host (a second core is
    available).  When false, [~prefetch:true] scans silently run the
    plain single-domain loop. *)

val wal_bytes : t -> int
val pool_pages : t -> int

val checkpoint_seq : t -> int
(** Monotone checkpoint sequence number, persisted in [meta].  External
    structures derived from the store (the persistent index image) stamp
    themselves with this; on open, a stamp equal to the meta's sequence
    proves the image covers exactly the checkpointed state, so only
    {!recovered_ops} need replaying on top. *)

val recovered_batches : t -> int
(** Committed WAL batches redone by {!open_dir}. *)

val recovered_ops : t -> Wal.op list
(** The operations {!open_dir} replayed from the WAL tail, in commit
    order — the exact delta between the last checkpoint and the opened
    state.  Empty after a clean shutdown.  Update ops carry their
    pre-images ([old_value]), so index maintenance can be replayed
    without re-reading the old record versions. *)
