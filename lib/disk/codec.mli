(** Binary codec for on-disk values, records and schemas.

    Replaces [Marshal] as the persistent format: every encoding is a
    deterministic, versionable byte layout — LEB128 varints (zigzag for
    signed), length-prefixed strings, one tag byte per {!Value.t}
    constructor — so foreign bytes fail decoding with {!Corrupt} instead
    of undefined behavior.  Collection values are rebuilt through the
    canonical smart constructors on decode, so a round trip always yields
    a canonical value. *)

open Soqm_vml

exception Corrupt of string
(** Raised by every [read_*] on malformed or truncated input. *)

(** {1 Encoding} *)

val write_uvarint : Buffer.t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on negative input. *)

val write_varint : Buffer.t -> int -> unit
(** Signed (zigzag) LEB128. *)

val write_string : Buffer.t -> string -> unit
(** Length-prefixed bytes. *)

val write_value : Buffer.t -> Value.t -> unit
val write_props : Buffer.t -> (string * Value.t) list -> unit
(** Property list: count, then (name, value) pairs. *)

val write_schema : Buffer.t -> Schema.t -> unit

(** {1 Decoding} *)

type cursor
(** A read position over an immutable byte string. *)

val cursor : ?pos:int -> string -> cursor
val pos : cursor -> int
(** Current read offset. *)

val read_byte : cursor -> int
(** One raw byte (encoding tags, bitmap bytes). *)

val read_uvarint : cursor -> int
val read_varint : cursor -> int
val read_string : cursor -> string
val read_value : cursor -> Value.t
val read_props : cursor -> (string * Value.t) list

val read_schema : cursor -> Schema.t
(** Decodes and re-validates via {!Schema.make}; a structurally valid
    encoding of an invalid schema raises {!Corrupt}. *)
