(** Columnar segment files: the on-disk home of a vacuumed class.

    [<cls>.col] holds the class's records as framed {!Column} chunks
    (length prefix + CRC-32 trailer per chunk, ascending disjoint OID
    ranges); [<cls>.dead] is a checksummed tombstone sidecar recording
    rows deleted since the vacuum (rewritten at checkpoint, covered by
    the WAL in between).  Both are replaced atomically (temp + rename),
    so a reader sees either the old or the new file — anything else is
    corruption and fails closed with {!Format_error} rather than
    decoding garbage.

    Heap shadows columnar: a record present in the class's heap segment
    supersedes the columnar copy with the same OID, and tombstones hide
    columnar rows entirely.  [Store] owns that merge; this module only
    serves the columnar side. *)

open Soqm_vml

type t

exception Format_error of string
(** The file exists but is foreign, truncated, checksum-damaged, or for
    the wrong class. *)

val path : dir:string -> cls:string -> string
val dead_path : dir:string -> cls:string -> string

val write :
  ?break_before:(int -> bool) ->
  dir:string ->
  cls:string ->
  (int * (string * Value.t) list) array ->
  unit
(** Encode records (ascending OID ids) into chunks and atomically replace
    [<cls>.col].  [break_before i] requests a chunk boundary before row
    index [i] — the clustering vacuum aligns chunks to parent-group
    starts so a path query decodes whole groups, not group fragments;
    boundaries inside the first 256 rows of a chunk are ignored so tiny
    groups still share chunks.  Chunks never exceed the fixed row
    budget regardless. *)

val load : counters:Counters.t -> dir:string -> cls:string -> t
(** Read and verify [<cls>.col]: every frame bound and CRC trailer is
    checked and every chunk header decoded before any row is served.
    @raise Format_error on a missing, foreign or corrupt file. *)

val remove : dir:string -> cls:string -> unit
(** Delete the class's columnar files (segment, tombstones, temps), if
    present. *)

val cls : t -> string
val chunk_count : t -> int
val row_count : t -> int

val total_bytes : t -> int
(** Sum of chunk payload bytes (the full-decode cost). *)

val meta_bytes : t -> int
(** Chunk header + oid column + directory bytes — the fixed decode cost
    of any scan, before per-column bytes. *)

val scan_bytes : t -> string list option -> int
(** Decode cost of scanning only these properties ([None] = all):
    [meta_bytes] plus the selected columns' byte extents.  The number the
    scan paths charge to [bytes_read]. *)

val iter_ids : t -> (int -> unit) -> unit
(** All OID ids in ascending order (no column decoding, no charges). *)

val mem : t -> int -> bool

val chunk_of : t -> int -> int option
(** Index of the chunk whose OID range covers this id, if any — the
    physical unit a point lookup decodes ({!Store.locate_pages} counts
    these as "pages" for columnar rows). *)

val fetch : t -> int -> (string * Value.t) list option
(** Point lookup; decodes (and charges) the containing chunk once and
    caches it for subsequent fetches. *)

val iter_rows : t -> (int -> (string * Value.t) list -> unit) -> unit
(** Full-record scan in ascending OID order.  Charges [bytes_read] with
    every chunk's full payload and [values_decoded] with every present
    value. *)

val iter_columns :
  t -> string list -> (int -> Value.t option list -> unit) -> unit
(** Selective scan: per row, the values of exactly these properties (in
    argument order, [None] = absent).  Charges only chunk meta bytes plus
    the selected columns' extents. *)

val write_dead : dir:string -> cls:string -> (int, unit) Hashtbl.t -> unit
(** Atomically rewrite the tombstone sidecar. *)

val load_dead : dir:string -> cls:string -> (int, unit) Hashtbl.t
(** Read the tombstone sidecar (empty table when the file is absent).
    @raise Format_error on a foreign or corrupt file. *)
