let size = 4096
let header = 4
let slot_bytes = 4
let capacity = size - header - slot_bytes

let format page =
  Bytes.fill page 0 size '\000';
  Bytes.set_uint16_le page 2 size

let is_blank page = Bytes.get_uint16_le page 0 = 0 && Bytes.get_uint16_le page 2 = 0
let nslots page = Bytes.get_uint16_le page 0
let free_end page = Bytes.get_uint16_le page 2
let free_space page = free_end page - header - (slot_bytes * nslots page)
let slot_pos slot = header + (slot_bytes * slot)

(* Live payload bytes: the record region spans [free_end, size); whatever
   live slots don't account for is dead space left by deletions. *)
let live_bytes page =
  let live = ref 0 in
  for slot = 0 to nslots page - 1 do
    if Bytes.get_uint16_le page (slot_pos slot) <> 0 then
      live := !live + Bytes.get_uint16_le page (slot_pos slot + 2)
  done;
  !live

let dead_bytes page = size - free_end page - live_bytes page

(* First reusable (deleted) slot directory entry, if any. *)
let dead_slot page =
  let n = nslots page in
  let rec go slot =
    if slot >= n then None
    else if Bytes.get_uint16_le page (slot_pos slot) = 0 then Some slot
    else go (slot + 1)
  in
  go 0

(* Space one more record of [len] bytes needs: the payload plus a fresh
   directory entry unless a dead slot can be recycled. *)
let needed page len =
  len + (match dead_slot page with Some _ -> 0 | None -> slot_bytes)

let has_room page len = free_space page + dead_bytes page >= needed page len

(* Repack live records against the page end, squeezing out dead space.
   Slot numbers are stable: dead directory entries stay in place (zeroed)
   so OID -> (page, slot) mappings survive. *)
let compact page =
  let scratch = Bytes.sub page 0 size in
  let free_end = ref size in
  for slot = 0 to nslots page - 1 do
    let off = Bytes.get_uint16_le scratch (slot_pos slot) in
    if off <> 0 then begin
      let len = Bytes.get_uint16_le scratch (slot_pos slot + 2) in
      free_end := !free_end - len;
      Bytes.blit scratch off page !free_end len;
      Bytes.set_uint16_le page (slot_pos slot) !free_end
    end
  done;
  Bytes.set_uint16_le page 2 !free_end

let insert page record =
  let len = String.length record in
  if not (has_room page len) then
    invalid_arg "Page.insert: record does not fit";
  if free_space page < needed page len then compact page;
  let slot, count =
    match dead_slot page with
    | Some slot -> (slot, nslots page)
    | None ->
        let slot = nslots page in
        (slot, slot + 1)
  in
  let off = free_end page - len in
  Bytes.blit_string record 0 page off len;
  Bytes.set_uint16_le page (slot_pos slot) off;
  Bytes.set_uint16_le page (slot_pos slot + 2) len;
  Bytes.set_uint16_le page 0 count;
  Bytes.set_uint16_le page 2 off;
  slot

let delete page slot =
  if slot >= 0 && slot < nslots page then (
    Bytes.set_uint16_le page (slot_pos slot) 0;
    Bytes.set_uint16_le page (slot_pos slot + 2) 0)

let read page slot =
  if slot < 0 || slot >= nslots page then None
  else
    let off = Bytes.get_uint16_le page (slot_pos slot) in
    if off = 0 then None
    else
      let len = Bytes.get_uint16_le page (slot_pos slot + 2) in
      Some (Bytes.sub_string page off len)

let iter page f =
  for slot = 0 to nslots page - 1 do
    match read page slot with Some r -> f slot r | None -> ()
  done
