let size = 4096
let header = 4
let slot_bytes = 4
let capacity = size - header - slot_bytes

let format page =
  Bytes.fill page 0 size '\000';
  Bytes.set_uint16_le page 2 size

let is_blank page = Bytes.get_uint16_le page 0 = 0 && Bytes.get_uint16_le page 2 = 0
let nslots page = Bytes.get_uint16_le page 0
let free_end page = Bytes.get_uint16_le page 2
let free_space page = free_end page - header - (slot_bytes * nslots page)
let has_room page len = free_space page >= len + slot_bytes
let slot_pos slot = header + (slot_bytes * slot)

let insert page record =
  let len = String.length record in
  if not (has_room page len) then
    invalid_arg "Page.insert: record does not fit";
  let slot = nslots page in
  let off = free_end page - len in
  Bytes.blit_string record 0 page off len;
  Bytes.set_uint16_le page (slot_pos slot) off;
  Bytes.set_uint16_le page (slot_pos slot + 2) len;
  Bytes.set_uint16_le page 0 (slot + 1);
  Bytes.set_uint16_le page 2 off;
  slot

let delete page slot =
  if slot >= 0 && slot < nslots page then (
    Bytes.set_uint16_le page (slot_pos slot) 0;
    Bytes.set_uint16_le page (slot_pos slot + 2) 0)

let read page slot =
  if slot < 0 || slot >= nslots page then None
  else
    let off = Bytes.get_uint16_le page (slot_pos slot) in
    if off = 0 then None
    else
      let len = Bytes.get_uint16_le page (slot_pos slot + 2) in
      Some (Bytes.sub_string page off len)

let iter page f =
  for slot = 0 to nslots page - 1 do
    match read page slot with Some r -> f slot r | None -> ()
  done
