(* Columnar segment files: one [<cls>.col] per columnar class, holding
   the class's vacuumed records as framed column chunks, plus a
   [<cls>.dead] tombstone sidecar for rows deleted after the vacuum.

   File layout:

     "SOQM-COL" ∥ uvarint version ∥ string cls        -- header
     frames: u32le payload_len ∥ payload ∥ u32le crc32(payload)

   Both files are written whole to a temp name, fsynced, and renamed
   into place, so a reader never sees a torn file: anything that fails
   the magic, a frame bound or a CRC trailer is corruption and decoding
   fails closed ([Format_error] / [Codec.Corrupt]) rather than yielding
   partial rows.

   Chunks hold ascending, disjoint OID ranges (the vacuum feeds
   OID-sorted rows), so point lookups binary-search the chunk directory;
   a one-chunk row cache keeps repeated fetches from re-decoding. *)

open Soqm_vml

exception Format_error of string

let magic = "SOQM-COL"
let dead_magic = "SOQM-DED"
let version = 1
let chunk_rows = 1024

type t = {
  cls : string;
  chunks : Column.chunk array;
  counters : Counters.t;
  mutable cached : (int * (int, (string * Value.t) list) Hashtbl.t) option;
      (* one-chunk fetch cache: (chunk index, id -> props) *)
}

let path ~dir ~cls = Filename.concat dir (cls ^ ".col")
let dead_path ~dir ~cls = Filename.concat dir (cls ^ ".dead")

(* ------------------------------------------------------------------ *)
(* framing                                                             *)
(* ------------------------------------------------------------------ *)

let add_u32le buf n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Buffer.add_bytes buf b

let get_u32le s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

let add_frame buf payload =
  add_u32le buf (String.length payload);
  Buffer.add_string buf payload;
  add_u32le buf (Wal.crc32 payload)

(* Atomic whole-file replacement: temp ∥ fsync ∥ rename. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.unsafe_of_string contents in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write fd b off (Bytes.length b - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp path

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* the columnar segment                                                *)
(* ------------------------------------------------------------------ *)

(* Minimum rows a chunk must reach before a requested boundary may cut
   it: traversal groups smaller than this share a chunk, so boundary
   alignment cannot degenerate into per-group chunks. *)
let min_aligned_rows = 256

let encode_file ?break_before ~cls rows =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  Codec.write_uvarint buf version;
  Codec.write_string buf cls;
  let n = Array.length rows in
  let off = ref 0 in
  while !off < n do
    let len =
      let hard = min chunk_rows (n - !off) in
      match break_before with
      | None -> hard
      | Some cut ->
        (* prefer the last requested boundary inside the window, once the
           chunk is big enough that alignment beats fixed slicing *)
        let best = ref hard in
        for i = min_aligned_rows to hard - 1 do
          if cut (!off + i) then best := i
        done;
        !best
    in
    add_frame buf (Column.encode (Array.sub rows !off len));
    off := !off + len
  done;
  Buffer.contents buf

let write ?break_before ~dir ~cls rows =
  write_file (path ~dir ~cls) (encode_file ?break_before ~cls rows)

let check_header ~path ~cls s =
  let m = String.length magic in
  if not (String.length s >= m && String.equal (String.sub s 0 m) magic) then
    raise (Format_error (path ^ ": not a soqm columnar segment (bad magic)"));
  let c = Codec.cursor ~pos:m s in
  let v = Codec.read_uvarint c in
  if v <> version then
    raise
      (Format_error
         (Printf.sprintf "%s: unsupported columnar version %d (want %d)" path v
            version));
  let hdr_cls = Codec.read_string c in
  if not (String.equal hdr_cls cls) then
    raise
      (Format_error
         (Printf.sprintf "%s: columnar segment holds class %s, expected %s"
            path hdr_cls cls));
  Codec.pos c

let load ~counters ~dir ~cls =
  let path = path ~dir ~cls in
  let s =
    try read_file path
    with Sys_error msg -> raise (Format_error (path ^ ": " ^ msg))
  in
  try
    let pos = ref (check_header ~path ~cls s) in
    let limit = String.length s in
    let chunks = ref [] in
    while !pos < limit do
      if !pos + 4 > limit then
        raise (Codec.Corrupt "truncated chunk length prefix");
      let len = get_u32le s !pos in
      if len < 0 || !pos + 4 + len + 4 > limit then
        raise (Codec.Corrupt "truncated chunk frame");
      let payload = String.sub s (!pos + 4) len in
      let crc = get_u32le s (!pos + 4 + len) in
      if crc <> Wal.crc32 payload then
        raise (Codec.Corrupt "chunk checksum mismatch");
      chunks := Column.decode payload :: !chunks;
      pos := !pos + 4 + len + 4
    done;
    let chunks = Array.of_list (List.rev !chunks) in
    Array.iteri
      (fun i ch ->
        if i > 0 then
          let prev = chunks.(i - 1) in
          if
            prev.Column.nrows > 0 && ch.Column.nrows > 0
            && prev.Column.ids.(prev.Column.nrows - 1) >= ch.Column.ids.(0)
          then raise (Codec.Corrupt "chunk oid ranges out of order"))
      chunks;
    { cls; chunks; counters; cached = None }
  with Codec.Corrupt msg -> raise (Format_error (path ^ ": " ^ msg))

let remove ~dir ~cls =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path ~dir ~cls; dead_path ~dir ~cls; path ~dir ~cls ^ ".tmp";
      dead_path ~dir ~cls ^ ".tmp" ]

let cls t = t.cls
let chunk_count t = Array.length t.chunks
let row_count t = Array.fold_left (fun acc ch -> acc + ch.Column.nrows) 0 t.chunks

let total_bytes t =
  Array.fold_left
    (fun acc ch -> acc + String.length ch.Column.payload)
    0 t.chunks

(* Bytes any scan must decode before touching columns: chunk headers,
   oid columns and directories. *)
let meta_bytes t =
  Array.fold_left (fun acc ch -> acc + ch.Column.meta_bytes) 0 t.chunks

(* The decode cost of scanning only [props] (None = all columns): the
   per-chunk meta bytes plus the byte extents of the selected columns.
   This is what the scan paths charge to [bytes_read]. *)
let scan_bytes t props =
  Array.fold_left
    (fun acc ch ->
      let cols =
        match props with
        | None ->
          Array.fold_left (fun a col -> a + col.Column.clen) 0 ch.Column.columns
        | Some names ->
          List.fold_left
            (fun a name ->
              match Column.find ch name with
              | Some col -> a + col.Column.clen
              | None -> a)
            0 names
      in
      acc + ch.Column.meta_bytes + cols)
    0 t.chunks

let iter_ids t f =
  Array.iter (fun ch -> Array.iter f ch.Column.ids) t.chunks

let find_chunk t id =
  let n = Array.length t.chunks in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let ch = t.chunks.(mid) in
      if ch.Column.nrows = 0 then None
      else if id < ch.Column.ids.(0) then go lo mid
      else if id > ch.Column.ids.(ch.Column.nrows - 1) then go (mid + 1) hi
      else Some (mid, ch)
  in
  go 0 n

let chunk_of t id =
  match find_chunk t id with Some (i, _) -> Some i | None -> None

let mem t id =
  match find_chunk t id with
  | None -> false
  | Some (_, ch) ->
    let ids = ch.Column.ids in
    let rec go lo hi =
      lo < hi
      &&
      let mid = (lo + hi) / 2 in
      if ids.(mid) = id then true
      else if id < ids.(mid) then go lo mid
      else go (mid + 1) hi
    in
    go 0 (Array.length ids)

let charge_chunk_rows t ch =
  Counters.charge_bytes_read t.counters (String.length ch.Column.payload);
  let values = ref ch.Column.nrows in
  Array.iter
    (fun col -> values := !values + List.length (Column.presence ch col))
    ch.Column.columns;
  Counters.charge_values_decoded t.counters !values

let fetch t id =
  match find_chunk t id with
  | None -> None
  | Some (i, ch) ->
    let table =
      match t.cached with
      | Some (j, table) when j = i -> table
      | _ ->
        let table = Hashtbl.create (2 * ch.Column.nrows) in
        charge_chunk_rows t ch;
        Array.iter
          (fun (id, props) -> Hashtbl.replace table id props)
          (Column.rows ch);
        t.cached <- Some (i, table);
        table
    in
    Hashtbl.find_opt table id

(* Full-record scan in ascending OID order; decodes (and charges) every
   column of every chunk. *)
let iter_rows t f =
  Array.iter
    (fun ch ->
      charge_chunk_rows t ch;
      Array.iter (fun (id, props) -> f id props) (Column.rows ch))
    t.chunks

(* Selective scan: decode only [props], yielding per-row (id, present
   values in [props] order).  Charges the chunk meta bytes plus the
   selected columns' extents — the columnar win the bench gates on. *)
let iter_columns t props f =
  Array.iter
    (fun ch ->
      let cols =
        List.map
          (fun name ->
            match Column.find ch name with
            | Some col -> Some (Column.read_column ch col)
            | None -> None)
          props
      in
      let bytes =
        List.fold_left
          (fun a name ->
            match Column.find ch name with
            | Some col -> a + col.Column.clen
            | None -> a)
          ch.Column.meta_bytes props
      in
      Counters.charge_bytes_read t.counters bytes;
      let values = ref ch.Column.nrows in
      List.iter
        (function
          | Some vs ->
            Array.iter (function Some _ -> incr values | None -> ()) vs
          | None -> ())
        cols;
      Counters.charge_values_decoded t.counters !values;
      Array.iteri
        (fun i id ->
          f id
            (List.map
               (function Some vs -> vs.(i) | None -> None)
               cols))
        ch.Column.ids)
    t.chunks

(* ------------------------------------------------------------------ *)
(* tombstone sidecar                                                   *)
(* ------------------------------------------------------------------ *)

let write_dead ~dir ~cls dead =
  let ids = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) dead []) in
  let body = Buffer.create 256 in
  Buffer.add_string body dead_magic;
  Codec.write_uvarint body version;
  Codec.write_string body cls;
  Codec.write_uvarint body (List.length ids);
  List.iter (Codec.write_uvarint body) ids;
  let body = Buffer.contents body in
  let buf = Buffer.create (String.length body + 4) in
  Buffer.add_string buf body;
  add_u32le buf (Wal.crc32 body);
  write_file (dead_path ~dir ~cls) (Buffer.contents buf)

let load_dead ~dir ~cls =
  let path = dead_path ~dir ~cls in
  let dead = Hashtbl.create 16 in
  if Sys.file_exists path then (
    let s =
      try read_file path
      with Sys_error msg -> raise (Format_error (path ^ ": " ^ msg))
    in
    try
      if String.length s < 4 then raise (Codec.Corrupt "truncated tombstones");
      let body = String.sub s 0 (String.length s - 4) in
      if get_u32le s (String.length s - 4) <> Wal.crc32 body then
        raise (Codec.Corrupt "tombstone checksum mismatch");
      let m = String.length dead_magic in
      if not (String.length body >= m && String.equal (String.sub body 0 m) dead_magic)
      then raise (Format_error (path ^ ": not a soqm tombstone file"));
      let c = Codec.cursor ~pos:m body in
      let v = Codec.read_uvarint c in
      if v <> version then
        raise
          (Format_error (Printf.sprintf "%s: unsupported version %d" path v));
      let hdr_cls = Codec.read_string c in
      if not (String.equal hdr_cls cls) then
        raise
          (Format_error
             (Printf.sprintf "%s: tombstones for class %s, expected %s" path
                hdr_cls cls));
      let n = Codec.read_uvarint c in
      for _ = 1 to n do
        Hashtbl.replace dead (Codec.read_uvarint c) ()
      done
    with Codec.Corrupt msg -> raise (Format_error (path ^ ": " ^ msg)));
  dead
