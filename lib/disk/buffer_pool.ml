open Soqm_vml

type frame = {
  data : bytes;
  mutable cls : string;
  mutable page : int;
  mutable pins : int;
  mutable dirty : bool;
  mutable refbit : bool;
  mutable valid : bool;
}

type t = {
  frames : frame array;
  table : (string * int, int) Hashtbl.t;  (* (cls, page) -> frame index *)
  mutable hand : int;
  m : Mutex.t;
  counters : Counters.t;
  read_page : cls:string -> page:int -> bytes -> unit;
  write_page : cls:string -> page:int -> bytes -> unit;
}

let create ~pages ~counters ~read_page ~write_page =
  let n = max 4 pages in
  {
    frames =
      Array.init n (fun _ ->
          {
            data = Bytes.create Page.size;
            cls = "";
            page = -1;
            pins = 0;
            dirty = false;
            refbit = false;
            valid = false;
          });
    table = Hashtbl.create (2 * n);
    hand = 0;
    m = Mutex.create ();
    counters;
    read_page;
    write_page;
  }

let capacity t = Array.length t.frames

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let write_back t f =
  if f.dirty then (
    t.write_page ~cls:f.cls ~page:f.page f.data;
    Counters.charge_page_write t.counters;
    f.dirty <- false)

(* second-chance clock: invalid frames are free, pinned frames are
   skipped, a set reference bit buys one more revolution *)
let victim t =
  let n = Array.length t.frames in
  let rec go steps =
    if steps > 2 * n then
      failwith "Buffer_pool: every frame is pinned";
    let f = t.frames.(t.hand) in
    let here = t.hand in
    t.hand <- (t.hand + 1) mod n;
    if not f.valid then here
    else if f.pins > 0 then go (steps + 1)
    else if f.refbit then (
      f.refbit <- false;
      go (steps + 1))
    else here
  in
  go 0

let pin t ~cls ~page =
  locked t (fun () ->
      match Hashtbl.find_opt t.table (cls, page) with
      | Some i ->
        let f = t.frames.(i) in
        f.pins <- f.pins + 1;
        f.refbit <- true;
        Counters.charge_pool_hit t.counters;
        f.data
      | None ->
        let i = victim t in
        let f = t.frames.(i) in
        if f.valid then (
          write_back t f;
          Hashtbl.remove t.table (f.cls, f.page);
          Counters.charge_pool_eviction t.counters);
        f.cls <- cls;
        f.page <- page;
        f.pins <- 1;
        f.dirty <- false;
        f.refbit <- true;
        f.valid <- true;
        Hashtbl.replace t.table (cls, page) i;
        t.read_page ~cls ~page f.data;
        if Page.is_blank f.data then Page.format f.data;
        Counters.charge_page_read t.counters;
        f.data)

let unpin t ~cls ~page ~dirty =
  locked t (fun () ->
      match Hashtbl.find_opt t.table (cls, page) with
      | None -> invalid_arg "Buffer_pool.unpin: page not resident"
      | Some i ->
        let f = t.frames.(i) in
        if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
        f.pins <- f.pins - 1;
        if dirty then f.dirty <- true)

(* Invalidate every frame of one class WITHOUT write-back: after a vacuum
   truncates the heap, cached images (dirty or not) describe pages that no
   longer exist and must never reach the file. *)
let drop_class t ~cls =
  locked t (fun () ->
      Array.iter
        (fun f ->
          if f.valid && String.equal f.cls cls then (
            if f.pins > 0 then
              invalid_arg "Buffer_pool.drop_class: page still pinned";
            Hashtbl.remove t.table (f.cls, f.page);
            f.valid <- false;
            f.dirty <- false;
            f.refbit <- false;
            f.page <- -1;
            f.cls <- ""))
        t.frames)

let flush t =
  locked t (fun () -> Array.iter (fun f -> if f.valid then write_back t f) t.frames)

let resident t =
  locked t (fun () ->
      Array.to_list t.frames
      |> List.filter_map (fun f -> if f.valid then Some (f.cls, f.page) else None))
