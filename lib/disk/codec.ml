open Soqm_vml

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* varints and strings                                                 *)
(* ------------------------------------------------------------------ *)

(* [n] interpreted as an unsigned bit pattern: logical shifts, so a
   negative int (top bit set, e.g. a zigzagged [min_int]) terminates *)
let write_uvarint_bits buf n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char buf (Char.chr n)
    else (
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7))
  in
  go n

let write_uvarint buf n =
  if n < 0 then invalid_arg "Codec.write_uvarint: negative";
  write_uvarint_bits buf n

(* zigzag: the sign bit moves to bit 0 so small magnitudes stay short *)
let write_varint buf n = write_uvarint_bits buf ((n lsl 1) lxor (n asr 62))

let write_string buf s =
  write_uvarint buf (String.length s);
  Buffer.add_string buf s

type cursor = { data : string; mutable p : int }

let cursor ?(pos = 0) data = { data; p = pos }
let pos c = c.p

let read_byte c =
  if c.p >= String.length c.data then corrupt "unexpected end of input";
  let b = Char.code c.data.[c.p] in
  c.p <- c.p + 1;
  b

let read_uvarint c =
  let rec go shift acc =
    if shift > 63 then corrupt "varint too long";
    let b = read_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let read_varint c =
  let z = read_uvarint c in
  (z lsr 1) lxor (-(z land 1))

let read_string c =
  let n = read_uvarint c in
  if n < 0 || c.p + n > String.length c.data then corrupt "truncated string";
  let s = String.sub c.data c.p n in
  c.p <- c.p + n;
  s

(* ------------------------------------------------------------------ *)
(* values                                                              *)
(* ------------------------------------------------------------------ *)

let write_real buf f =
  let bits = Int64.bits_of_float f in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 bits;
  Buffer.add_bytes buf b

let read_real c =
  if c.p + 8 > String.length c.data then corrupt "truncated real";
  let bits = String.get_int64_le c.data c.p in
  c.p <- c.p + 8;
  Int64.float_of_bits bits

let rec write_value buf (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Bool false -> Buffer.add_char buf '\001'
  | Value.Bool true -> Buffer.add_char buf '\002'
  | Value.Int n ->
    Buffer.add_char buf '\003';
    write_varint buf n
  | Value.Real f ->
    Buffer.add_char buf '\004';
    write_real buf f
  | Value.Str s ->
    Buffer.add_char buf '\005';
    write_string buf s
  | Value.Obj oid ->
    Buffer.add_char buf '\006';
    write_string buf (Oid.cls oid);
    write_uvarint buf (Oid.id oid)
  | Value.Cls c ->
    Buffer.add_char buf '\007';
    write_string buf c
  | Value.Tuple comps ->
    Buffer.add_char buf '\008';
    write_uvarint buf (List.length comps);
    List.iter
      (fun (label, v) ->
        write_string buf label;
        write_value buf v)
      comps
  | Value.Set elts ->
    Buffer.add_char buf '\009';
    write_uvarint buf (List.length elts);
    List.iter (write_value buf) elts
  | Value.Arr elts ->
    Buffer.add_char buf '\010';
    write_uvarint buf (Array.length elts);
    Array.iter (write_value buf) elts
  | Value.Dict entries ->
    Buffer.add_char buf '\011';
    write_uvarint buf (List.length entries);
    List.iter
      (fun (k, v) ->
        write_value buf k;
        write_value buf v)
      entries

(* element counts: each element costs at least [per] encoded byte(s), so
   any count beyond the remaining input is corruption — checked before
   allocating, so a damaged prefix can neither over-allocate nor escape
   with [Invalid_argument] from [List.init] on a negative pattern *)
let read_count ?(per = 1) c =
  let n = read_uvarint c in
  if n < 0 || n > (String.length c.data - c.p) / per then
    corrupt "oversized element count";
  n

let rec read_value c : Value.t =
  match read_byte c with
  | 0 -> Value.Null
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (read_varint c)
  | 4 -> Value.Real (read_real c)
  | 5 -> Value.Str (read_string c)
  | 6 ->
    let cls = read_string c in
    let id = read_uvarint c in
    Value.Obj (Oid.make ~cls ~id)
  | 7 -> Value.Cls (read_string c)
  | 8 ->
    let n = read_count ~per:2 c in
    let comps =
      List.init n (fun _ ->
          let label = read_string c in
          let v = read_value c in
          (label, v))
    in
    (try Value.tuple comps
     with Invalid_argument _ -> corrupt "duplicate tuple label")
  | 9 ->
    let n = read_count c in
    Value.set (List.init n (fun _ -> read_value c))
  | 10 ->
    let n = read_count c in
    Value.Arr (Array.init n (fun _ -> read_value c))
  | 11 ->
    let n = read_count ~per:2 c in
    let entries =
      List.init n (fun _ ->
          let k = read_value c in
          let v = read_value c in
          (k, v))
    in
    (try Value.dict entries
     with Invalid_argument _ -> corrupt "duplicate dictionary key")
  | t -> corrupt "unknown value tag %d" t

let write_props buf props =
  write_uvarint buf (List.length props);
  List.iter
    (fun (name, v) ->
      write_string buf name;
      write_value buf v)
    props

let read_props c =
  let n = read_count ~per:2 c in
  List.init n (fun _ ->
      let name = read_string c in
      let v = read_value c in
      (name, v))

(* ------------------------------------------------------------------ *)
(* types and schemas                                                   *)
(* ------------------------------------------------------------------ *)

let rec write_vtype buf (t : Vtype.t) =
  match t with
  | Vtype.TString -> Buffer.add_char buf '\000'
  | Vtype.TInt -> Buffer.add_char buf '\001'
  | Vtype.TReal -> Buffer.add_char buf '\002'
  | Vtype.TBool -> Buffer.add_char buf '\003'
  | Vtype.TObj cls ->
    Buffer.add_char buf '\004';
    write_string buf cls
  | Vtype.TAnyObj -> Buffer.add_char buf '\005'
  | Vtype.TTuple comps ->
    Buffer.add_char buf '\006';
    write_uvarint buf (List.length comps);
    List.iter
      (fun (label, t) ->
        write_string buf label;
        write_vtype buf t)
      comps
  | Vtype.TSet t ->
    Buffer.add_char buf '\007';
    write_vtype buf t
  | Vtype.TArray t ->
    Buffer.add_char buf '\008';
    write_vtype buf t
  | Vtype.TDict (k, v) ->
    Buffer.add_char buf '\009';
    write_vtype buf k;
    write_vtype buf v

let rec read_vtype c : Vtype.t =
  match read_byte c with
  | 0 -> Vtype.TString
  | 1 -> Vtype.TInt
  | 2 -> Vtype.TReal
  | 3 -> Vtype.TBool
  | 4 -> Vtype.TObj (read_string c)
  | 5 -> Vtype.TAnyObj
  | 6 ->
    let n = read_uvarint c in
    Vtype.ttuple
      (List.init n (fun _ ->
           let label = read_string c in
           let t = read_vtype c in
           (label, t)))
  | 7 -> Vtype.TSet (read_vtype c)
  | 8 -> Vtype.TArray (read_vtype c)
  | 9 ->
    let k = read_vtype c in
    let v = read_vtype c in
    Vtype.TDict (k, v)
  | t -> corrupt "unknown type tag %d" t

let write_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let read_bool c =
  match read_byte c with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad boolean byte %d" b

let write_option write buf = function
  | None -> Buffer.add_char buf '\000'
  | Some x ->
    Buffer.add_char buf '\001';
    write buf x

let read_option read c = if read_bool c then Some (read c) else None

let write_meth buf (m : Schema.method_sig) =
  write_string buf m.Schema.meth_name;
  write_uvarint buf (List.length m.Schema.params);
  List.iter
    (fun (name, t) ->
      write_string buf name;
      write_vtype buf t)
    m.Schema.params;
  write_vtype buf m.Schema.returns;
  write_bool buf (m.Schema.kind = Schema.External);
  write_bool buf m.Schema.side_effect_free;
  write_real buf m.Schema.cost_per_call;
  write_option write_real buf m.Schema.selectivity

let read_meth c : Schema.method_sig =
  let meth_name = read_string c in
  let nparams = read_uvarint c in
  let params =
    List.init nparams (fun _ ->
        let name = read_string c in
        let t = read_vtype c in
        (name, t))
  in
  let returns = read_vtype c in
  let kind = if read_bool c then Schema.External else Schema.Internal in
  let side_effect_free = read_bool c in
  let cost_per_call = read_real c in
  let selectivity = read_option read_real c in
  {
    Schema.meth_name;
    params;
    returns;
    kind;
    side_effect_free;
    cost_per_call;
    selectivity;
  }

let write_prop buf (p : Schema.property) =
  write_string buf p.Schema.prop_name;
  write_vtype buf p.Schema.prop_type;
  write_option
    (fun buf (cls, prop) ->
      write_string buf cls;
      write_string buf prop)
    buf p.Schema.inverse

let read_prop c : Schema.property =
  let prop_name = read_string c in
  let prop_type = read_vtype c in
  let inverse =
    read_option
      (fun c ->
        let cls = read_string c in
        let prop = read_string c in
        (cls, prop))
      c
  in
  { Schema.prop_name; prop_type; inverse }

let write_list write buf xs =
  write_uvarint buf (List.length xs);
  List.iter (write buf) xs

let read_list read c =
  let n = read_uvarint c in
  List.init n (fun _ -> read c)

let write_schema buf schema =
  write_list
    (fun buf (cd : Schema.class_def) ->
      write_string buf cd.Schema.cls_name;
      write_list write_meth buf cd.Schema.own_methods;
      write_list write_prop buf cd.Schema.properties;
      write_list write_meth buf cd.Schema.inst_methods)
    buf (Schema.classes schema)

let read_schema c =
  let classes =
    read_list
      (fun c ->
        let cls_name = read_string c in
        let own_methods = read_list read_meth c in
        let properties = read_list read_prop c in
        let inst_methods = read_list read_meth c in
        { Schema.cls_name; own_methods; properties; inst_methods })
      c
  in
  try Schema.make classes
  with Invalid_argument msg -> corrupt "invalid schema: %s" msg
