type t = {
  cls : string;
  path : string;
  mutable fd : Unix.file_descr;  (* replaced by [rewrite] *)
  mutable pages : int;  (* data pages (file pages minus the header) *)
  m : Mutex.t;
}

exception Format_error of string

let magic = "SOQM-SEG"
let version = 1

let really_read fd buf len =
  let rec go off =
    if off < len then
      let n = Unix.read fd buf off (len - off) in
      if n = 0 then off else go (off + n)
    else off
  in
  go 0

let really_write fd buf len =
  let rec go off = if off < len then go (off + Unix.write fd buf off (len - off)) in
  go 0

let header_page cls =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  Codec.write_uvarint buf version;
  Codec.write_string buf cls;
  let page = Bytes.make Page.size '\000' in
  let s = Buffer.contents buf in
  Bytes.blit_string s 0 page 0 (String.length s);
  page

let check_header path cls fd =
  let buf = Bytes.create Page.size in
  if really_read fd buf Page.size < Page.size then
    raise (Format_error (path ^ ": truncated segment header"));
  let s = Bytes.to_string buf in
  if not (String.length s >= 8 && String.equal (String.sub s 0 8) magic) then
    raise (Format_error (path ^ ": not a soqm heap segment (bad magic)"));
  (try
     let c = Codec.cursor ~pos:8 s in
     let v = Codec.read_uvarint c in
     if v <> version then
       raise
         (Format_error
            (Printf.sprintf "%s: unsupported segment version %d (want %d)" path
               v version));
     let hdr_cls = Codec.read_string c in
     if not (String.equal hdr_cls cls) then
       raise
         (Format_error
            (Printf.sprintf "%s: segment holds class %s, expected %s" path
               hdr_cls cls))
   with Codec.Corrupt msg -> raise (Format_error (path ^ ": " ^ msg)))

let open_seg ~dir ~cls =
  let path = Filename.concat dir (cls ^ ".heap") in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let bytes = Unix.lseek fd 0 Unix.SEEK_END in
  if bytes = 0 then (
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    really_write fd (header_page cls) Page.size;
    { cls; path; fd; pages = 0; m = Mutex.create () })
  else (
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    (try check_header path cls fd
     with e ->
       Unix.close fd;
       raise e);
    (* a torn final page (crash mid-extension) counts as absent: reads of
       it zero-fill past the write boundary and redo recreates it *)
    {
      cls;
      path;
      fd;
      pages = max 0 ((bytes - 1) / Page.size);
      m = Mutex.create ();
    })

let cls t = t.cls
let data_pages t = t.pages

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let read_page t n buf =
  if n < 1 then invalid_arg "Segment.read_page: data pages start at 1";
  locked t (fun () ->
      ignore (Unix.lseek t.fd (n * Page.size) Unix.SEEK_SET);
      let got = really_read t.fd buf Page.size in
      if got < Page.size then Bytes.fill buf got (Page.size - got) '\000')

let write_page t n buf =
  if n < 1 then invalid_arg "Segment.write_page: data pages start at 1";
  locked t (fun () ->
      ignore (Unix.lseek t.fd (n * Page.size) Unix.SEEK_SET);
      really_write t.fd buf Page.size;
      if n > t.pages then t.pages <- n)

(* Atomic whole-heap replacement for the clustering vacuum: the new
   image (header + data pages) is written to a temp file, fsynced, and
   renamed over the segment, so a crash leaves either the old heap or
   the complete new one — never a mix.  The handle switches to the new
   file's descriptor; the caller must have dropped any pooled pages of
   the old image first. *)
let rewrite t pages_arr =
  locked t (fun () ->
      let tmp = t.path ^ ".tmp" in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      (try
         really_write fd (header_page t.cls) Page.size;
         Array.iter (fun p -> really_write fd p Page.size) pages_arr;
         Unix.fsync fd;
         Unix.close fd
       with e ->
         Unix.close fd;
         raise e);
      Unix.rename tmp t.path;
      Unix.close t.fd;
      t.fd <- Unix.openfile t.path [ Unix.O_RDWR ] 0o644;
      t.pages <- Array.length pages_arr)

let reset t =
  locked t (fun () ->
      Unix.ftruncate t.fd Page.size;
      Unix.fsync t.fd;
      t.pages <- 0)

let sync t = locked t (fun () -> Unix.fsync t.fd)
let close t = locked t (fun () -> Unix.close t.fd)
