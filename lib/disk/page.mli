(** Slotted 4 KiB heap pages.

    Layout: a 4-byte header (u16 slot count, u16 free-end offset), a slot
    directory growing downward from the header (4 bytes per slot: u16
    record offset, u16 record length), and records packed from the page
    end toward the directory.  Slot 0 of a record is its stable in-page
    address: deleting marks the slot dead (offset 0) without renumbering,
    so OID → (page, slot) mappings survive unrelated deletions.  Dead
    space is reclaimed on insert: when the contiguous watermark gap is
    exhausted but dead record bytes (plus a recyclable dead slot entry)
    would fit the record, the page compacts in place — live records are
    repacked against the page end, keeping their slot numbers. *)

val size : int
(** Page size in bytes: 4096. *)

val capacity : int
(** Largest record an empty page can hold ([size] minus header and one
    slot). *)

val format : bytes -> unit
(** Initialize [size] bytes as an empty page. *)

val is_blank : bytes -> bool
(** An all-zero (never formatted) page image, as produced by reading past
    a segment's end. *)

val nslots : bytes -> int
(** Slots allocated so far, live or dead. *)

val free_space : bytes -> int
(** Contiguous bytes between the slot directory and the record region
    (the watermark gap, before any compaction). *)

val dead_bytes : bytes -> int
(** Record-region bytes occupied by deleted records, reclaimable by
    in-page compaction. *)

val has_room : bytes -> int -> bool
(** Whether a record of this length fits, counting both the watermark gap
    and compactable dead space, and the reuse of dead slot entries. *)

val insert : bytes -> string -> int
(** Place a record, returning its slot number.  Recycles the first dead
    slot entry if one exists, else appends a slot; compacts the page
    first when the watermark gap alone is too small.
    @raise Invalid_argument when the record does not fit even after
    compaction. *)

val delete : bytes -> int -> unit
(** Mark a slot dead.  Idempotent; out-of-range slots are ignored (a
    redo pass may replay deletions already applied). *)

val read : bytes -> int -> string option
(** The record in a slot, or [None] for dead or out-of-range slots. *)

val iter : bytes -> (int -> string -> unit) -> unit
(** All live records with their slot numbers, ascending. *)
