open Soqm_vml

type op =
  | Insert of { oid : Oid.t; props : (string * Value.t) list }
  | Update of {
      oid : Oid.t;
      prop : string;
      value : Value.t;
      old_value : Value.t;
    }
  | Delete of { oid : Oid.t; props : (string * Value.t) list }

type t = {
  fd : Unix.file_descr;
  mutable bytes : int;  (* current end of the committed log *)
  counters : Counters.t;
}

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                        *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* record payloads                                                     *)
(* ------------------------------------------------------------------ *)

let write_oid buf oid =
  Codec.write_string buf (Oid.cls oid);
  Codec.write_uvarint buf (Oid.id oid)

let read_oid c =
  let cls = Codec.read_string c in
  let id = Codec.read_uvarint c in
  Oid.make ~cls ~id

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
  | Insert { oid; props } ->
    Buffer.add_char buf 'I';
    write_oid buf oid;
    Codec.write_props buf props
  | Update { oid; prop; value; old_value } ->
    Buffer.add_char buf 'V';
    write_oid buf oid;
    Codec.write_string buf prop;
    Codec.write_value buf value;
    Codec.write_value buf old_value
  | Delete { oid; props } ->
    Buffer.add_char buf 'E';
    write_oid buf oid;
    Codec.write_props buf props);
  Buffer.contents buf

(* a payload is either a framing marker or an encoded op *)
type payload = Begin | Commit | Op of op

let decode_payload s =
  if String.length s = 0 then raise (Codec.Corrupt "empty WAL payload");
  let c = Codec.cursor ~pos:1 s in
  match s.[0] with
  | 'B' -> Begin
  | 'C' -> Commit
  | 'I' ->
    let oid = read_oid c in
    let props = Codec.read_props c in
    Op (Insert { oid; props })
  | 'V' ->
    let oid = read_oid c in
    let prop = Codec.read_string c in
    let value = Codec.read_value c in
    let old_value = Codec.read_value c in
    Op (Update { oid; prop; value; old_value })
  | 'E' ->
    let oid = read_oid c in
    let props = Codec.read_props c in
    Op (Delete { oid; props })
  (* tags of logs written before pre-images existed: redo needs only the
     new values, so absent pre-images decode as Null / empty *)
  | 'U' ->
    let oid = read_oid c in
    let prop = Codec.read_string c in
    let value = Codec.read_value c in
    Op (Update { oid; prop; value; old_value = Value.Null })
  | 'D' -> Op (Delete { oid = read_oid c; props = [] })
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown WAL tag %c" t))

let add_frame buf payload =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Buffer.add_bytes buf b;
  Buffer.add_string buf payload

(* ------------------------------------------------------------------ *)
(* recovery scan                                                       *)
(* ------------------------------------------------------------------ *)

(* Scan the raw log image, collecting batches whose Commit frame is
   intact.  Returns them with the byte offset where the committed prefix
   ends; everything after that offset is a torn tail or an uncommitted
   trailing batch. *)
let scan image =
  let len = String.length image in
  let batches = ref [] in
  let committed_end = ref 0 in
  let current = ref None in
  (* [None] outside a batch, [Some ops] inside *)
  let pos = ref 0 in
  (try
     while !pos + 8 <= len do
       let flen = Int32.to_int (String.get_int32_le image !pos) in
       if flen < 0 || !pos + 8 + flen > len then raise Exit;
       let payload = String.sub image (!pos + 8) flen in
       let crc = Int32.to_int (String.get_int32_le image (!pos + 4)) in
       if crc32 payload land 0xffffffff <> crc land 0xffffffff then raise Exit;
       (match (decode_payload payload, !current) with
       | Begin, None -> current := Some []
       | Op op, Some ops -> current := Some (op :: ops)
       | Commit, Some ops ->
         batches := List.rev ops :: !batches;
         current := None;
         committed_end := !pos + 8 + flen
       | (Begin | Op _ | Commit), _ ->
         (* framing violation: stop at the last committed point *)
         raise Exit);
       pos := !pos + 8 + flen
     done
   with Exit | Codec.Corrupt _ -> ());
  (List.rev !batches, !committed_end)

let read_file fd =
  let len = Unix.lseek fd 0 Unix.SEEK_END in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec fill off =
    if off < len then
      let n = Unix.read fd b off (len - off) in
      if n = 0 then off else fill (off + n)
    else off
  in
  let got = fill 0 in
  Bytes.sub_string b 0 got

let open_log ~counters path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let image = read_file fd in
  let batches, committed_end = scan image in
  if committed_end < String.length image then Unix.ftruncate fd committed_end;
  ignore (Unix.lseek fd committed_end Unix.SEEK_SET);
  ({ fd; bytes = committed_end; counters }, batches)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let commit_many t batches =
  let buf = Buffer.create 256 in
  List.iter
    (fun ops ->
      add_frame buf "B";
      List.iter (fun op -> add_frame buf (encode_op op)) ops;
      add_frame buf "C";
      Counters.charge_wal_records t.counters (List.length ops + 2);
      Counters.charge_wal_commit t.counters)
    batches;
  let s = Buffer.contents buf in
  write_all t.fd s;
  Unix.fsync t.fd;
  t.bytes <- t.bytes + String.length s;
  Counters.charge_wal_fsync t.counters

let commit t ops = commit_many t [ ops ]

let size t = t.bytes

let truncate t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  t.bytes <- 0

let close t = Unix.close t.fd
