open Soqm_vml

(* The policy is derived once per store from the schema's inverse link
   declarations: a scalar object-valued property with a declared inverse
   is a path-expression edge (Paragraph.section <-> Section.paragraphs),
   and the worked queries traverse exactly those edges.  The first such
   property of a class is its clustering parent. *)

type t = (string, string) Hashtbl.t

let parent_prop_of (cd : Schema.class_def) =
  List.find_map
    (fun (p : Schema.property) ->
      match p.Schema.prop_type with
      | Vtype.TObj _ when p.Schema.inverse <> None -> Some p.Schema.prop_name
      | _ -> None)
    cd.Schema.properties

let derive schema =
  let t = Hashtbl.create 8 in
  List.iter
    (fun (cd : Schema.class_def) ->
      match parent_prop_of cd with
      | Some prop -> Hashtbl.replace t cd.Schema.cls_name prop
      | None -> ())
    (Schema.classes schema);
  t

let parent_prop t cls = Hashtbl.find_opt t cls

(* The clustering parent of a record, if its class has one and the
   edge is set. *)
let parent_of t ~cls props =
  match Hashtbl.find_opt t cls with
  | None -> None
  | Some prop -> (
    match List.assoc_opt prop props with
    | Some (Value.Obj o) -> Some o
    | _ -> None)
