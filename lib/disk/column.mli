(** Column chunk codec: batches of records decomposed into per-property
    columns with dictionary-encoded strings, presence bitmaps and
    LEB128-packed ints.

    A chunk carries an ascending OID column, a directory of named
    columns, then the column bytes.  Each column opens with an encoding
    byte and a presence bitmap (absent property ≠ explicit Null; columns
    holding explicit Nulls fall back to the generic tagged encoding, so
    the int and string-dictionary encodings only ever hold typed
    values).  The directory precedes the column bytes, so a reader can
    decode the header and then touch only the columns a scan needs.

    This is the pure payload codec: framing (length prefix + CRC-32
    trailer) and file placement live in [Colseg].  Every decoder fails
    closed with {!Codec.Corrupt} on malformed input. *)

open Soqm_vml

type column = private { cname : string; coff : int; clen : int }
(** Directory entry: a named column spanning [clen] payload bytes at
    [coff]. *)

type chunk = private {
  nrows : int;
  ids : int array;  (** ascending OID ids, one per row *)
  columns : column array;  (** directory, sorted by name *)
  payload : string;
  meta_bytes : int;
      (** header ∥ oid column ∥ directory bytes — the fixed decode cost of
          any scan of this chunk, before per-column bytes *)
}

val encode : (int * (string * Value.t) list) array -> string
(** Encode records (OID id, properties) as a chunk payload.  Ids must be
    strictly ascending ([Invalid_argument] otherwise — the vacuum path
    feeds OID-sorted rows). *)

val decode : string -> chunk
(** Parse a payload: validates the row count, oid column, directory and
    column extents (no trailing bytes, sorted directory).  Column bytes
    are *not* decoded — use {!read_column}.
    @raise Codec.Corrupt on any malformed payload. *)

val find : chunk -> string -> column option
(** Directory lookup by property name (binary search). *)

val presence : chunk -> column -> int list
(** Row indexes where the property is present, ascending (decoded from
    the bitmap alone). *)

val read_column : chunk -> column -> Value.t option array
(** Decode one column into per-row values ([None] = property absent on
    that row).
    @raise Codec.Corrupt when the column bytes are malformed. *)

val rows : chunk -> (int * (string * Value.t) list) array
(** Reassemble all records; each property list comes back sorted by
    name (the canonical on-disk order). *)
