(** Leader/follower group commit: coalesce concurrent WAL batches into a
    single write + fsync.

    Committers {!enqueue} their batch (cheap, preserves commit order —
    call it while still holding whatever lock orders commits) and then
    {!wait} for durability outside that lock.  The first waiter whose
    batch is unflushed becomes the {e leader}: it drains every queued
    batch and hands the group, in enqueue order, to the [flush]
    callback; followers park on a condition variable.  Batches enqueued
    while a leader is flushing are picked up by the next leader, so
    under concurrent committers several batches share one fsync.

    The WAL file itself stays single-writer: only one leader is ever
    inside [flush]. *)

type t

type ticket
(** A committed batch's position in the durable order. *)

val create : ?window:float -> flush:(Wal.op list list -> unit) -> unit -> t
(** [flush batches] must make every batch durable (one
    {!Wal.commit_many}) and apply it; it runs on exactly one domain at a
    time.  [window] (seconds, default 0) makes the leader sleep before
    draining so concurrent committers coalesce even when fsync is fast;
    see {!set_window}. *)

val enqueue : t -> Wal.op list -> ticket
(** Append one batch to the durable order. *)

val wait : t -> ticket -> unit
(** Block until the batch is durable, becoming the flush leader if no
    one else is.  If the flush of the group containing this ticket
    raised (WAL write or fsync failure), re-raises that exception —
    every waiter in the failed group sees it, not just the leader. *)

val submit : t -> Wal.op list -> unit
(** [enqueue] then [wait] — for callers with no external commit-order
    lock. *)

val set_window : t -> float -> unit
(** Coalescing window in seconds (clamped to >= 0): the leader sleeps
    this long before draining the queue, trading a little commit latency
    for fewer fsyncs under load. *)

val window : t -> float

val pending : t -> int
(** Batches currently queued and not yet taken by a leader. *)
