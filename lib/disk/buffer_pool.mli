(** Fixed-capacity buffer pool with pin counts and clock eviction.

    Frames cache heap-segment pages keyed by (class, page number).
    {!pin} returns the resident frame bytes, reading through the
    supplied callback on a miss; pinned frames are never evicted, and
    the clock hand gives every resident frame a second chance (one
    reference bit) before reassigning it.  Dirty frames are written back
    through the write callback on eviction and on {!flush}.

    All operations are serialized by an internal mutex, so a prefetcher
    domain and a consumer domain can share the pool; page bytes returned
    by {!pin} remain valid until the matching {!unpin}.  Traffic is
    charged to [Counters]: [pool_hits], [pages_read], [pages_written],
    [pool_evictions]. *)

type t

val create :
  pages:int ->
  counters:Soqm_vml.Counters.t ->
  read_page:(cls:string -> page:int -> bytes -> unit) ->
  write_page:(cls:string -> page:int -> bytes -> unit) ->
  t
(** A pool of [pages] frames (at least 4 are allocated regardless). *)

val capacity : t -> int

val pin : t -> cls:string -> page:int -> bytes
(** Resident page bytes, faulted in on a miss.  Blank images read from
    beyond a segment's end are formatted as empty pages.
    @raise Failure when every frame is pinned. *)

val unpin : t -> cls:string -> page:int -> dirty:bool -> unit
(** Release one pin; [dirty:true] marks the frame as needing write-back.
    @raise Invalid_argument if the page is not resident or not pinned. *)

val flush : t -> unit
(** Write back every dirty frame (they stay resident and clean). *)

val drop_class : t -> cls:string -> unit
(** Invalidate every resident frame of [cls] {e without} write-back —
    used after vacuum truncates a heap segment, when cached images (even
    dirty ones) describe pages that no longer exist.
    @raise Invalid_argument if any of the class's pages is pinned. *)

val resident : t -> (string * int) list
(** Pages currently cached (for tests and stats). *)
