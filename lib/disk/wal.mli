(** Write-ahead log with checksummed frames and batch commit.

    Every record is framed as [u32 length ∥ u32 crc32(payload) ∥ payload];
    a DML batch is framed by a Begin record, one record per operation,
    and a Commit record, written with a single [write] and made durable
    with [fsync] before {!commit} returns.

    Recovery ({!open_log}) is redo-only: it scans frames from the start,
    yields every batch whose Commit record survives intact, and truncates
    the file after the last committed batch — a torn frame (short header,
    short payload, checksum mismatch, unknown tag) or a trailing
    uncommitted batch is discarded, never replayed.  Replaying the same
    log twice yields the same batches, so the store's redo application
    only needs idempotent operations. *)

open Soqm_vml

type op =
  | Insert of { oid : Oid.t; props : (string * Value.t) list }
      (** (re)write the full record of [oid] *)
  | Update of {
      oid : Oid.t;
      prop : string;
      value : Value.t;
      old_value : Value.t;
    }
      (** upsert one property.  [old_value] is a logical pre-image: redo
          ignores it, but replaying the tail through the maintenance
          observers needs it to un-index the displaced value.  Logs
          written before pre-images existed decode with [old_value =
          Null]. *)
  | Delete of { oid : Oid.t; props : (string * Value.t) list }
      (** [props] snapshots the record at deletion (pre-image for
          observer replay; empty in legacy logs). *)

type t

val crc32 : string -> int
(** IEEE CRC-32 of a payload, as used in WAL frame headers.  Exposed so
    other on-disk structures (column-chunk trailers) share one checksum
    implementation. *)

val open_log : counters:Counters.t -> string -> t * op list list
(** Open (creating if absent) and recover: returns the handle and the
    committed batches in commit order.  The on-disk file is truncated to
    the end of the committed prefix. *)

val commit : t -> op list -> unit
(** Append one Begin/ops/Commit batch and [fsync].  Charges
    [wal_records] (one per frame), [wal_commits] and one
    [wal_fsyncs]. *)

val commit_many : t -> op list list -> unit
(** Group commit: append several Begin/ops/Commit batches, in list
    order, with a {e single} [write] and a {e single} [fsync].  Each
    batch is recovered independently by {!open_log} — a torn tail
    inside the group truncates to the last intact Commit frame, so a
    crash replays exactly a prefix of the batches.  Charges one
    [wal_commits] per batch but only one [wal_fsyncs]. *)

val size : t -> int
(** Current log size in bytes. *)

val truncate : t -> unit
(** Discard all records (after a checkpoint has made their effects
    durable in the heap segments). *)

val close : t -> unit
