(* Leader/follower group commit.

   Committers enqueue WAL batches in commit order and wait for
   durability.  The first waiter whose batch is not yet flushed becomes
   the leader: it drains the whole queue and hands it to [flush] — one
   write, one fsync, then page application — while followers sleep on
   the condition variable.  Batches that arrive while a leader is inside
   [flush] pile up and are flushed together by the next leader, so under
   concurrent committers the fsync count drops below the batch count.

   An optional [window] makes coalescing robust on fast devices (and on
   single-core hosts, where a committer is rarely preempted inside a
   cheap fsync): the leader sleeps [window] seconds before draining, so
   concurrent committers land in the same flush.  [window = 0.] (the
   default) flushes immediately. *)

type ticket = int  (* 1-based enqueue index *)

type t = {
  m : Mutex.t;
  c : Condition.t;
  flush : Wal.op list list -> unit;
  mutable window : float;
  mutable queue : Wal.op list list;  (* pending batches, newest first *)
  mutable enqueued : int;  (* batches ever enqueued *)
  mutable flushed : int;  (* batches flushed so far *)
  mutable flushing : bool;  (* a leader is inside [flush] *)
  mutable failed : (int * int * exn) list;
      (* ticket ranges whose group flush raised: every waiter in the
         range must see the exception, not a silent success *)
}

let create ?(window = 0.) ~flush () =
  {
    m = Mutex.create ();
    c = Condition.create ();
    flush;
    window;
    queue = [];
    enqueued = 0;
    flushed = 0;
    flushing = false;
    failed = [];
  }

let set_window t w = t.window <- max 0. w
let window t = t.window

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let enqueue t ops =
  locked t (fun () ->
      t.queue <- ops :: t.queue;
      t.enqueued <- t.enqueued + 1;
      t.enqueued)

(* Wait until the ticket's batch is durable, leading a flush whenever no
   other leader is active and our batch is still queued.  If the flush
   of the group containing [ticket] raised, re-raise that exception here
   — for the leader and every follower alike. *)
let wait t ticket =
  Mutex.lock t.m;
  while t.flushed < ticket do
    if t.flushing then Condition.wait t.c t.m
    else begin
      t.flushing <- true;
      (if t.window > 0. then begin
         (* gather concurrent committers before draining *)
         Mutex.unlock t.m;
         Unix.sleepf t.window;
         Mutex.lock t.m
       end);
      let batch = List.rev t.queue in
      t.queue <- [];
      let n = List.length batch in
      (* only the (sole) leader advances [flushed], so this range is
         stable across the unlocked flush *)
      let lo = t.flushed + 1 in
      Mutex.unlock t.m;
      let outcome =
        match if n > 0 then t.flush batch with
        | () -> None
        | exception e -> Some e
      in
      Mutex.lock t.m;
      (match outcome with
      | None -> ()
      | Some e -> t.failed <- (lo, lo + n - 1, e) :: t.failed);
      t.flushed <- t.flushed + n;
      t.flushing <- false;
      Condition.broadcast t.c
    end
  done;
  let err =
    List.find_opt (fun (lo, hi, _) -> lo <= ticket && ticket <= hi) t.failed
  in
  Mutex.unlock t.m;
  match err with Some (_, _, e) -> raise e | None -> ()

let submit t ops = wait t (enqueue t ops)

let pending t = locked t (fun () -> List.length t.queue)
