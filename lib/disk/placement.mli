(** Per-class clustered placement policy.

    Path expressions (document → section → paragraph) dominate the
    workload, so the store tries to place an object on — or near — the
    heap page that already holds its siblings under the same
    path-expression parent.  Which property is "the parent" is derived
    from the schema: the first scalar object-valued property with a
    declared inverse link is the reference edge path queries traverse
    (placement-by-reference-path, after Darmont & Gruenwald's comparison
    of OODB clustering policies).

    The policy drives two mechanisms in {!Store}: insert-time page
    hints (new records try their parent's last page before the fill
    page) and the clustering vacuum (a heap rewrite in parent-major
    traversal order). *)

open Soqm_vml

type t

val derive : Schema.t -> t
(** Compute the policy: one clustering parent property per class that
    declares an inverse-linked object property; classes without one
    (roots like [Document]) keep plain fill-page placement. *)

val parent_prop : t -> string -> string option
(** The clustering parent property of a class, if any. *)

val parent_of : t -> cls:string -> (string * Value.t) list -> Oid.t option
(** The parent object a record of [cls] should cluster with, when the
    policy has an edge for the class and the record has it set. *)
