type t = {
  m : Mutex.t;
  ok_read : Condition.t;
  ok_write : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    ok_read = Condition.create ();
    ok_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let lock_read t =
  Mutex.lock t.m;
  (* writer preference: queued writers bar new readers, so a steady
     query stream cannot starve commit application *)
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.ok_read t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let unlock_read t =
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.ok_write;
  Mutex.unlock t.m

let lock_write t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.ok_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let unlock_write t =
  Mutex.lock t.m;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.ok_write
  else Condition.broadcast t.ok_read;
  Mutex.unlock t.m

let read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
