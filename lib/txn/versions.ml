open Soqm_vml

(* A superseded value: [v] was the key's value from [ts] until the write
   that pushed this entry.  Chains are newest-first; entries with equal
   [ts] (several writes replayed inside one commit) keep push order, so
   the head-most match is always the latest. *)
type entry = { ts : int; v : Value.t }

exception Snapshot_too_old of { oid : Oid.t; prop : string; ts : int }

type t = {
  clock : int Atomic.t;  (* last assigned commit timestamp *)
  stable : int Atomic.t;  (* last timestamp whose effects are fully applied *)
  mutable recording : int option;  (* commit ts during apply, else None *)
  last : (Oid.t * string, int) Hashtbl.t;  (* key -> last committed write ts *)
  chains : (Oid.t * string, entry list ref) Hashtbl.t;
  created : (Oid.t, int) Hashtbl.t;  (* absent = pre-existing (ts 0) *)
  tombs : (Oid.t, int * (string * Value.t) list) Hashtbl.t;
      (* deletion ts + final property values *)
  obj_last : (Oid.t, int) Hashtbl.t;  (* last ts any write touched the oid *)
  mutable max_chain : int option;  (* per-key entry cap; None = unbounded *)
  floors : (Oid.t * string, int) Hashtbl.t;
      (* oldest readable ts after a cap truncation; snapshots below refuse *)
}

let create () =
  {
    clock = Atomic.make 0;
    stable = Atomic.make 0;
    recording = None;
    last = Hashtbl.create 1024;
    chains = Hashtbl.create 256;
    created = Hashtbl.create 256;
    tombs = Hashtbl.create 64;
    obj_last = Hashtbl.create 256;
    max_chain = None;
    floors = Hashtbl.create 64;
  }

let set_max_chain t n =
  (match n with
  | Some n when n < 1 -> invalid_arg "Versions.set_max_chain: cap must be >= 1"
  | _ -> ());
  t.max_chain <- n

(* The snapshot clock lags the allocation clock: a commit's timestamp is
   assigned before its replay, but it only becomes a legal begin
   snapshot once the whole write set is applied — otherwise a
   transaction beginning mid-commit would read a torn mix of pre- and
   post-commit values, and first-committer-wins ([last_write > begin_ts]
   being strict) would let a lost update through. *)
let now t = Atomic.get t.stable

let begin_recording t =
  let ts = Atomic.fetch_and_add t.clock 1 + 1 in
  t.recording <- Some ts;
  ts

let end_recording t = t.recording <- None

let rec publish t ts =
  let cur = Atomic.get t.stable in
  if cur < ts && not (Atomic.compare_and_set t.stable cur ts) then publish t ts

let created_at t oid = Option.value ~default:0 (Hashtbl.find_opt t.created oid)
let last_write t oid prop =
  Option.value ~default:0 (Hashtbl.find_opt t.last (oid, prop))
let obj_last t oid = Option.value ~default:0 (Hashtbl.find_opt t.obj_last oid)
let deleted_at t oid = Option.map fst (Hashtbl.find_opt t.tombs oid)

(* Outside a recorded commit (direct store writes on a database that also
   has a transaction manager) each event gets a fresh timestamp of its
   own, so snapshots stay consistent either way. *)
let event_ts t =
  match t.recording with
  | Some ts -> ts
  | None -> Atomic.fetch_and_add t.clock 1 + 1

(* Enforce the per-key cap: keep only the newest [n] entries and record
   the oldest surviving timestamp as the key's floor — a snapshot older
   than the floor can no longer reconstruct the key and must refuse
   ([Snapshot_too_old]) rather than silently read a wrong value. *)
let enforce_cap t key r =
  match t.max_chain with
  | None -> ()
  | Some n ->
    let rec take i = function
      | [] -> []
      | _ :: _ when i = 0 -> []
      | e :: rest -> e :: take (i - 1) rest
    in
    if List.length !r > n then begin
      let kept = take n !r in
      r := kept;
      match List.rev kept with
      | oldest :: _ -> Hashtbl.replace t.floors key oldest.ts
      | [] -> ()
    end

let push_chain t key e =
  match Hashtbl.find_opt t.chains key with
  | Some r ->
    r := e :: !r;
    enforce_cap t key r
  | None -> Hashtbl.replace t.chains key (ref [ e ])

let record t (ev : Object_store.change) =
  let ts = event_ts t in
  (match ev with
  | Object_store.Created oid ->
    Hashtbl.replace t.created oid ts;
    Hashtbl.remove t.tombs oid;
    Hashtbl.replace t.obj_last oid ts
  | Object_store.Prop_set { oid; prop; old_value; _ } ->
    let key = (oid, prop) in
    (* the superseded value had been in force since the key's previous
       write — or since the object's creation for a first write *)
    let since =
      match Hashtbl.find_opt t.last key with
      | Some w -> w
      | None -> created_at t oid
    in
    push_chain t key { ts = since; v = old_value };
    Hashtbl.replace t.last key ts;
    Hashtbl.replace t.obj_last oid ts
  | Object_store.Deleted { oid; props } ->
    Hashtbl.replace t.tombs oid (ts, props);
    Hashtbl.replace t.obj_last oid ts);
  (* a direct (non-recorded) write is live the moment its tables are
     updated; a recorded commit publishes once, after the whole replay *)
  if t.recording = None then publish t ts

let observe t store = Object_store.subscribe store (record t)

(* ------------------------------------------------------------------ *)
(* snapshot reads                                                      *)
(* ------------------------------------------------------------------ *)

let visible t store ~ts oid =
  (Object_store.exists store oid || Hashtbl.mem t.tombs oid)
  && created_at t oid <= ts
  &&
  match Hashtbl.find_opt t.tombs oid with
  | Some (d, _) -> d > ts
  | None -> true

let chain_find t key ~ts =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some r -> List.find_opt (fun e -> e.ts <= ts) !r

let read t store ~ts oid prop =
  if not (visible t store ~ts oid) then raise Not_found;
  let key = (oid, prop) in
  if last_write t oid prop > ts then begin
    (* superseded after the snapshot: the newest chain entry at or below
       [ts] is the value that was in force *)
    (match Hashtbl.find_opt t.floors key with
    | Some floor when ts < floor -> raise (Snapshot_too_old { oid; prop; ts })
    | _ -> ());
    match chain_find t key ~ts with
    | Some e -> e.v
    | None -> Value.Null
  end
  else
    (* unchanged since the snapshot: the live value — which for an
       object deleted after the snapshot survives in its tombstone *)
    match Hashtbl.find_opt t.tombs oid with
    | Some (_, props) ->
      Option.value ~default:Value.Null (List.assoc_opt prop props)
    | None -> Object_store.peek_prop store oid prop

let extent t store ~ts cls =
  let live =
    List.filter
      (fun oid -> created_at t oid <= ts)
      (Object_store.extent store cls)
  in
  (* objects deleted after the snapshot are still part of its extent *)
  let dead =
    Hashtbl.fold
      (fun oid (d, _) acc ->
        if String.equal (Oid.cls oid) cls && d > ts && created_at t oid <= ts
        then oid :: acc
        else acc)
      t.tombs []
  in
  List.sort
    (fun a b -> Int.compare (Oid.id a) (Oid.id b))
    (List.rev_append dead live)

(* ------------------------------------------------------------------ *)
(* pruning                                                             *)
(* ------------------------------------------------------------------ *)

let live_entries t =
  Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.chains 0

let tombstones t = Hashtbl.length t.tombs

let prune t ~min_snapshot =
  (* keep every entry newer than the oldest active snapshot, plus the one
     entry that snapshot itself reads; a chain whose key was last written
     before every snapshot serves no reader at all *)
  let rec keep = function
    | [] -> []
    | e :: rest -> if e.ts <= min_snapshot then [ e ] else e :: keep rest
  in
  let dead =
    Hashtbl.fold
      (fun key r acc ->
        if last_write t (fst key) (snd key) <= min_snapshot then key :: acc
        else begin
          r := keep !r;
          acc
        end)
      t.chains []
  in
  List.iter
    (fun key ->
      Hashtbl.remove t.chains key;
      Hashtbl.remove t.floors key)
    dead;
  (* a floor at or below the pruning horizon guards no live snapshot *)
  let dead_floors =
    Hashtbl.fold
      (fun key f acc -> if f <= min_snapshot then key :: acc else acc)
      t.floors []
  in
  List.iter (Hashtbl.remove t.floors) dead_floors;
  let dead_tombs =
    Hashtbl.fold
      (fun oid (d, _) acc -> if d <= min_snapshot then oid :: acc else acc)
      t.tombs []
  in
  List.iter (Hashtbl.remove t.tombs) dead_tombs
