(** Writer-preferring readers/writer latch.

    Any number of readers share the latch; a writer is exclusive.  A
    {e queued} writer bars new readers, so a steady stream of queries
    cannot starve commit application.  The latch protects short critical
    sections only — the MVCC layer keeps readers semantically
    non-blocking (snapshots never wait for a transaction to finish, only
    for the brief in-memory application of an already-validated commit).

    Not reentrant: a holder acquiring the latch again (in either mode)
    deadlocks. *)

type t

val create : unit -> t

val read : t -> (unit -> 'a) -> 'a
(** Run [f] holding the latch in shared mode. *)

val write : t -> (unit -> 'a) -> 'a
(** Run [f] holding the latch exclusively. *)
