(** Multi-statement transactions with snapshot isolation.

    A {!manager} wraps a {!Soqm_core.Db.t} with a commit clock
    ({!Versions}), a readers/writer latch ({!Rwlock}) and a commit
    queue.  Transactions buffer their writes — the store is untouched
    until commit, so {!abort} discards buffers and nothing ever rolls
    back — and read at the snapshot taken by {!begin_}: their own
    buffered effects first, then the versioned state as of their
    begin timestamp.  Readers never block writers and writers never
    block readers; the only physical waits are the short exclusive
    latch during a validated commit's in-memory application, and the
    group-commit fsync.

    {!commit} is first-committer-wins: under the commit mutex the write
    set is validated against the version bookkeeping (any key committed
    past our snapshot, or a concurrent delete, refuses the commit with
    [`Conflict]); then the commit timestamp is taken, the buffered
    operations replay into the store under the exclusive latch (the
    version recorder and all maintenance observers — inverse links,
    indexes, implication sets, statistics — run inside, so derived
    writes are versioned and WAL-logged uniformly), and the WAL batch is
    enqueued on the group-commit queue.  The fsync wait happens
    {e outside} the commit mutex — that is what lets concurrent commits
    coalesce into one fsync. *)

open Soqm_vml

(** {1 Manager} *)

type manager

val manager : Soqm_core.Db.t -> manager
(** Attach transaction management to a database.  Create at most one
    manager per database (the version recorder subscribes to the store's
    change events).  Once attached, writes should flow through
    transactions; direct store writes remain coherent (each event gets
    its own timestamp) but are not atomic or durable as a group. *)

val db : manager -> Soqm_core.Db.t

val with_read : manager -> (unit -> 'a) -> 'a
(** Run [f] under the shared latch: a consistent latest-committed view
    for query execution (no commit applies mid-query).  Do not call
    transaction reads inside — the latch is not reentrant. *)

val with_write : manager -> (unit -> 'a) -> 'a
(** Run [f] under the commit mutex {e and} the exclusive latch — for
    plans that may mutate the store directly (side-effecting method
    calls the optimizer refuses).  Takes the locks in commit order, so
    concurrent validation and snapshot reads never race the mutation.
    Not reentrant; do not commit inside. *)

val clock : manager -> int
(** The newest fully applied commit timestamp. *)

val versions : manager -> Versions.t
val active_count : manager -> int

val min_active_snapshot : manager -> int
(** Oldest snapshot an active transaction holds, or {!clock} when idle
    (the pruning horizon). *)

val set_group_window : manager -> float -> unit
(** Forwarded to {!Soqm_disk.Store.set_group_window}; no-op for
    in-memory databases. *)

val prune : manager -> unit
(** Drop version-chain entries no active snapshot can reach (down to
    the one entry at or below the pruning horizon each chain still
    owes its oldest reader). *)

val set_max_chain : manager -> int option -> unit
(** Cap every per-key version chain at [n] entries (default: unbounded).
    Normally {!prune} bounds history by the oldest active snapshot; a
    stalled reader pins that horizon and lets hot-key chains grow without
    limit.  The cap trades that memory for refusal: when a chain exceeds
    it, the oldest versions are dropped and a transaction whose snapshot
    predates the truncation gets {!Versions.Snapshot_too_old} from
    {!get_prop} instead of a wrong value — abort it and retry afresh.
    Forwarded to {!Versions.set_max_chain}. *)

val maybe_prune : manager -> unit
(** {!prune}, rate-limited: fires every few commits.  Called
    automatically by {!commit}. *)

(** {1 Transactions} *)

type t

type state = Active | Committed of int | Aborted

val begin_ : manager -> t
(** Open a transaction at the current commit timestamp. *)

val begin_ts : t -> int
val state : t -> state
val is_active : t -> bool

val get_prop : t -> Oid.t -> string -> Value.t
(** Own buffered write if any, else the snapshot value.
    @raise Not_found on an object invisible at the snapshot (or deleted
    by this transaction), [Invalid_argument] on unknown property.
    @raise Versions.Snapshot_too_old when the key's history was capped
    ({!set_max_chain}) past this transaction's snapshot. *)

val exists : t -> Oid.t -> bool
val extent : t -> string -> Oid.t list
(** Snapshot extent merged with own inserts, minus own deletes,
    ascending serial. *)

val set_prop : t -> Oid.t -> string -> Value.t -> unit
(** Buffer a property write (typechecked now, applied at commit).
    @raise Not_found on an object invisible at the snapshot. *)

val insert : t -> cls:string -> (string * Value.t) list -> Oid.t
(** Buffer an object creation.  The OID is reserved immediately (so the
    transaction can reference and read its own insert); an abort leaks
    the serial, which is harmless. *)

val delete : t -> Oid.t -> unit
(** Buffer a deletion; deleting an own uncommitted insert just unbuffers
    it. *)

val commit : t -> (int, [ `Conflict of string ]) result
(** Validate, apply, group-commit.  [Ok ts] is the commit timestamp
    (read-only transactions commit trivially at their snapshot).
    [Error (`Conflict _)] means first-committer-wins refused the write
    set; the transaction is aborted — retry by running it afresh.
    Any other failure (replay, WAL flush) re-raises after aborting and
    unregistering the transaction: it never stays [Active]. *)

val abort : t -> unit
(** Discard the buffers.  Nothing was applied, so there is nothing to
    roll back — maintenance observers never saw the writes. *)

val run :
  ?retries:int ->
  manager ->
  (t -> 'a) ->
  ('a * int, [ `Conflict of string ]) result
(** [run m f] executes [f] in a fresh transaction and commits,
    re-running it (up to [retries] times, default 8) when the commit
    conflicts — the auto-commit building block.  [f] must not commit or
    abort itself.  An exception from [f] aborts and re-raises. *)
