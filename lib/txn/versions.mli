(** Multi-version bookkeeping for snapshot isolation.

    Refines the maintenance epoch into a monotonic commit clock: every
    committed transaction takes the next timestamp, and for each
    property key [(oid, prop)] the store's {e current} value is
    annotated with the timestamp of its last committed write, while
    superseded values live on in per-key version chains.  A snapshot at
    timestamp [s] then reads, for every key, the value whose write
    timestamp is the newest one [<= s] — without ever blocking a writer.

    The recorder is an {!Soqm_vml.Object_store} observer
    ({!observe}), so every path that mutates the store — user DML,
    inverse-link backlinks, implication-set maintenance — is versioned
    uniformly; nothing needs to remember to log.

    Thread discipline: mutation (event recording, {!prune}) must run
    under the transaction manager's exclusive latch; reads may run
    concurrently under the shared latch. *)

open Soqm_vml

type t

exception Snapshot_too_old of { oid : Oid.t; prop : string; ts : int }
(** A snapshot tried to read a key whose history has been truncated by
    the per-chain cap ({!set_max_chain}) past the snapshot's timestamp.
    Refusing loudly beats silently returning a wrong value; the reader
    should abort and retry at a fresh snapshot. *)

val create : unit -> t

val set_max_chain : t -> int option -> unit
(** Bound every per-key version chain to at most [n] superseded entries
    ([None], the default, keeps history unbounded until {!prune}).  When
    a write pushes a chain past the cap, the oldest entries are dropped
    immediately and the key records a {e floor}: the oldest timestamp
    still reconstructible.  Snapshot reads below a key's floor raise
    {!Snapshot_too_old} instead of lying — this protects memory against
    a stalled reader pinning the pruning horizon while hot keys churn.
    Takes effect on subsequent writes; [n] must be [>= 1].
    @raise Invalid_argument on a non-positive cap. *)

val observe : t -> Object_store.t -> unit
(** Subscribe the recorder to the store's change events.  Call once. *)

(** {1 Commit clock} *)

val now : t -> int
(** The last {e fully applied} timestamp — a beginning transaction's
    snapshot.  This lags the allocation clock while a commit is mid-
    replay: its timestamp only becomes a legal snapshot once {!publish}
    runs, so no transaction can begin at a timestamp whose effects it
    would observe torn. *)

val begin_recording : t -> int
(** Take the next commit timestamp and stamp all change events recorded
    until {!end_recording} with it (one commit's application is one
    timestamp, however many events it emits).  The timestamp is not
    visible to {!now} until it is {!publish}ed. *)

val end_recording : t -> unit
(** Events observed while no recording is active get a fresh timestamp
    each — direct (non-transactional) store writes remain coherent (they
    self-publish as soon as they are recorded). *)

val publish : t -> int -> unit
(** Advance the snapshot clock to [ts] (monotonic: lower values are
    no-ops).  A committing transaction calls this after its whole write
    set has been replayed, while still holding the exclusive latch. *)

(** {1 Conflict bookkeeping} *)

val last_write : t -> Oid.t -> string -> int
(** Timestamp of the key's last committed write (0 = never written since
    versioning began). *)

val obj_last : t -> Oid.t -> int
(** Timestamp of the last write touching any key of the object,
    including its creation and deletion. *)

val created_at : t -> Oid.t -> int
(** 0 for objects that predate versioning. *)

val deleted_at : t -> Oid.t -> int option

(** {1 Snapshot reads} *)

val visible : t -> Object_store.t -> ts:int -> Oid.t -> bool
(** Did the object exist at snapshot [ts] — created at or before it and
    not yet deleted? *)

val read : t -> Object_store.t -> ts:int -> Oid.t -> string -> Value.t
(** The key's value as of snapshot [ts]: the live store value when the
    key is unchanged since then, else the right chain entry (or the
    tombstone's final values for an object deleted after [ts]).
    @raise Not_found if the object is not {!visible} at [ts].
    @raise Snapshot_too_old if the key's history was capped past [ts]. *)

val extent : t -> Object_store.t -> ts:int -> string -> Oid.t list
(** The class extent as of [ts], ascending serial: live objects created
    by then plus objects deleted after [ts]. *)

(** {1 Pruning} *)

val prune : t -> min_snapshot:int -> unit
(** Drop chain entries and tombstones no active snapshot can read:
    everything strictly older than the newest entry visible at
    [min_snapshot] (the oldest active transaction's snapshot, or {!now}
    when none is active). *)

val live_entries : t -> int
(** Superseded values currently retained (across all chains). *)

val tombstones : t -> int
