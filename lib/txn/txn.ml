open Soqm_vml
module Db = Soqm_core.Db
module Disk = Soqm_disk.Store

let fail fmt = Format.kasprintf invalid_arg fmt

(* ------------------------------------------------------------------ *)
(* manager                                                             *)
(* ------------------------------------------------------------------ *)

type manager = {
  db : Db.t;
  versions : Versions.t;
  latch : Rwlock.t;
  commit_m : Mutex.t;  (* serializes validate -> ts -> apply -> enqueue *)
  active : (int, int) Hashtbl.t;  (* txn id -> begin_ts *)
  active_m : Mutex.t;
  mutable next_txn : int;
  mutable commits : int;  (* committed write transactions, for pruning *)
}

let manager db =
  let m =
    {
      db;
      versions = Versions.create ();
      latch = Rwlock.create ();
      commit_m = Mutex.create ();
      active = Hashtbl.create 64;
      active_m = Mutex.create ();
      next_txn = 0;
      commits = 0;
    }
  in
  Versions.observe m.versions db.Db.store;
  m

let db m = m.db
let with_read m f = Rwlock.read m.latch f

(* Direct (non-transactional) store mutation: commit mutex first, then
   the exclusive latch — the same order every committer and pruner
   takes, so validation (which runs under commit_m alone) never races
   the version tables these writes update. *)
let with_write m f =
  Mutex.lock m.commit_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m.commit_m)
    (fun () -> Rwlock.write m.latch f)
let clock m = Versions.now m.versions
let versions m = m.versions

(* Setting the cap is chain surgery on future pushes only; still take the
   writer path so it cannot interleave with a commit's replay. *)
let set_max_chain m n = with_write m (fun () -> Versions.set_max_chain m.versions n)

let active_count m =
  Mutex.lock m.active_m;
  let n = Hashtbl.length m.active in
  Mutex.unlock m.active_m;
  n

let min_active_snapshot m =
  Mutex.lock m.active_m;
  let s =
    Hashtbl.fold (fun _ b acc -> min b acc) m.active (Versions.now m.versions)
  in
  Mutex.unlock m.active_m;
  s

let set_group_window m w =
  match m.db.Db.disk with Some d -> Disk.set_group_window d w | None -> ()

(* Pruning takes commit_m before the exclusive latch — the same order as
   commit — so validation never reads chains mid-surgery. *)
let prune_interval = 64

let prune m =
  (* commit mutex first, then the exclusive latch — the same order a
     committing transaction takes, so validation never races the chain
     surgery *)
  Mutex.lock m.commit_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m.commit_m)
    (fun () ->
      let s = min_active_snapshot m in
      Rwlock.write m.latch (fun () ->
          Versions.prune m.versions ~min_snapshot:s))

let maybe_prune m =
  let due =
    Mutex.lock m.active_m;
    m.commits <- m.commits + 1;
    let d = m.commits mod prune_interval = 0 in
    Mutex.unlock m.active_m;
    d
  in
  if due then prune m

(* ------------------------------------------------------------------ *)
(* transactions                                                        *)
(* ------------------------------------------------------------------ *)

type wop =
  | WInsert of Oid.t * (string * Value.t) list
  | WSet of Oid.t * string * Value.t
  | WDelete of Oid.t

type state = Active | Committed of int | Aborted

type t = {
  mgr : manager;
  id : int;
  begin_ts : int;
  mutable state : state;
  mutable log : wop list;  (* execution order, reversed *)
  writes : (Oid.t * string, Value.t) Hashtbl.t;  (* latest buffered value *)
  inserted : (Oid.t, (string * Value.t) list) Hashtbl.t;  (* initial props *)
  deleted : (Oid.t, unit) Hashtbl.t;
}

let begin_ m =
  Counters.charge_txn_begin (Db.counters m.db);
  Mutex.lock m.active_m;
  let id = m.next_txn in
  m.next_txn <- id + 1;
  let begin_ts = Versions.now m.versions in
  Hashtbl.replace m.active id begin_ts;
  Mutex.unlock m.active_m;
  {
    mgr = m;
    id;
    begin_ts;
    state = Active;
    log = [];
    writes = Hashtbl.create 16;
    inserted = Hashtbl.create 4;
    deleted = Hashtbl.create 4;
  }

let begin_ts t = t.begin_ts
let state t = t.state
let is_active t = t.state = Active
let store t = t.mgr.db.Db.store

let check_active t =
  match t.state with
  | Active -> ()
  | Committed _ -> fail "Txn: transaction %d already committed" t.id
  | Aborted -> fail "Txn: transaction %d already aborted" t.id

let unregister t =
  Mutex.lock t.mgr.active_m;
  Hashtbl.remove t.mgr.active t.id;
  Mutex.unlock t.mgr.active_m

let prop_def t oid prop =
  match Schema.property (Object_store.schema (store t)) ~cls:(Oid.cls oid) ~prop with
  | Some p -> p
  | None -> fail "Txn: class %s has no property %S" (Oid.cls oid) prop

(* --- reads: own effects first, then the snapshot ------------------- *)

let snapshot_visible t oid =
  Rwlock.read t.mgr.latch (fun () ->
      Versions.visible t.mgr.versions (store t) ~ts:t.begin_ts oid)

let exists t oid =
  check_active t;
  (not (Hashtbl.mem t.deleted oid))
  && (Hashtbl.mem t.inserted oid || snapshot_visible t oid)

let get_prop t oid prop =
  check_active t;
  let c = Db.counters t.mgr.db in
  Counters.charge_object_fetch c;
  Counters.charge_property_read c;
  if Hashtbl.mem t.deleted oid then raise Not_found;
  match Hashtbl.find_opt t.writes (oid, prop) with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt t.inserted oid with
    | Some props -> (
      let def = prop_def t oid prop in
      match List.assoc_opt prop props with
      | Some v -> v
      | None -> (
        (* parity with [create_object]: set-valued properties default to
           the empty set, everything else to NULL *)
        match def.Schema.prop_type with
        | Vtype.TSet _ -> Value.Set []
        | _ -> Value.Null))
    | None ->
      Rwlock.read t.mgr.latch (fun () ->
          Versions.read t.mgr.versions (store t) ~ts:t.begin_ts oid prop))

let extent t cls =
  check_active t;
  let base =
    Rwlock.read t.mgr.latch (fun () ->
        Versions.extent t.mgr.versions (store t) ~ts:t.begin_ts cls)
  in
  let base = List.filter (fun o -> not (Hashtbl.mem t.deleted o)) base in
  let mine =
    Hashtbl.fold
      (fun oid _ acc -> if String.equal (Oid.cls oid) cls then oid :: acc else acc)
      t.inserted []
  in
  List.sort
    (fun a b -> Int.compare (Oid.id a) (Oid.id b))
    (List.rev_append mine base)

(* --- buffered writes ----------------------------------------------- *)

let set_prop t oid prop v =
  check_active t;
  let def = prop_def t oid prop in
  if not (Vtype.check def.Schema.prop_type v) then
    fail "Txn: value %s ill-typed for %s.%s : %s" (Value.to_string v)
      (Oid.cls oid) prop
      (Vtype.to_string def.Schema.prop_type);
  if not (exists t oid) then raise Not_found;
  Hashtbl.replace t.writes (oid, prop) v;
  t.log <- WSet (oid, prop, v) :: t.log

let insert t ~cls props =
  check_active t;
  let schema = Object_store.schema (store t) in
  ignore (Schema.class_exn schema cls);
  List.iter
    (fun (p, v) ->
      match Schema.property schema ~cls ~prop:p with
      | None -> fail "Txn: class %s has no property %S" cls p
      | Some def ->
        if not (Vtype.check def.Schema.prop_type v) then
          fail "Txn: value %s ill-typed for %s.%s : %s" (Value.to_string v) cls
            p
            (Vtype.to_string def.Schema.prop_type))
    props;
  (* the OID is reserved now (atomically — no latch needed) and never
     rolled back; an abort just leaks the serial — so the transaction
     can hand out and read its own inserts before commit *)
  let oid = Object_store.reserve_oid (store t) ~cls in
  Hashtbl.replace t.inserted oid props;
  t.log <- WInsert (oid, props) :: t.log;
  oid

let delete t oid =
  check_active t;
  if Hashtbl.mem t.inserted oid then begin
    (* deleting an own insert: scrub every buffered trace of it *)
    Hashtbl.remove t.inserted oid;
    let doomed =
      Hashtbl.fold
        (fun ((o, _) as key) _ acc -> if Oid.equal o oid then key :: acc else acc)
        t.writes []
    in
    List.iter (Hashtbl.remove t.writes) doomed;
    t.log <-
      List.filter
        (function
          | WInsert (o, _) | WSet (o, _, _) | WDelete o -> not (Oid.equal o oid))
        t.log
  end
  else begin
    if Hashtbl.mem t.deleted oid || not (snapshot_visible t oid) then
      raise Not_found;
    Hashtbl.replace t.deleted oid ();
    t.log <- WDelete oid :: t.log
  end

(* --- commit / abort ------------------------------------------------ *)

let abort t =
  check_active t;
  t.state <- Aborted;
  unregister t;
  Counters.charge_txn_abort (Db.counters t.mgr.db)

(* First-committer-wins: any key of the write set committed past our
   snapshot — or a concurrent delete of an object we write or delete —
   refuses the commit. *)
let validate t =
  let v = t.mgr.versions in
  let conflict = ref None in
  let note reason = if !conflict = None then conflict := Some reason in
  Hashtbl.iter
    (fun (oid, prop) _ ->
      if !conflict = None && not (Hashtbl.mem t.inserted oid) then begin
        if Versions.last_write v oid prop > t.begin_ts then
          note
            (Printf.sprintf "concurrent write to %s.%s" (Oid.to_string oid)
               prop);
        match Versions.deleted_at v oid with
        | Some d when d > t.begin_ts ->
          note (Printf.sprintf "concurrent delete of %s" (Oid.to_string oid))
        | _ -> ()
      end)
    t.writes;
  Hashtbl.iter
    (fun oid () ->
      if !conflict = None && Versions.obj_last v oid > t.begin_ts then
        note
          (Printf.sprintf "concurrent write touching deleted %s"
             (Oid.to_string oid)))
    t.deleted;
  !conflict

let replay t () =
  List.iter
    (function
      | WInsert (oid, props) -> Object_store.insert_reserved (store t) oid props
      | WSet (oid, prop, v) -> Object_store.set_prop (store t) oid prop v
      | WDelete oid -> Object_store.delete_object (store t) oid)
    (List.rev t.log)

let commit t =
  check_active t;
  let m = t.mgr in
  let c = Db.counters m.db in
  if t.log = [] then begin
    (* read-only: its snapshot is its serialization point *)
    t.state <- Committed t.begin_ts;
    unregister t;
    Counters.charge_txn_commit c;
    Ok t.begin_ts
  end
  else begin
    match
      let outcome =
        Mutex.lock m.commit_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m.commit_m)
          (fun () ->
            match validate t with
            | Some reason -> Error reason
            | None ->
              let ts = Versions.begin_recording m.versions in
              let (), disk_ops =
                Fun.protect
                  ~finally:(fun () -> Versions.end_recording m.versions)
                  (fun () ->
                    (* exclusive latch: queries and snapshot reads see the
                       whole commit or none of it; the version recorder and
                       every maintenance observer run inside *)
                    Rwlock.write m.latch (fun () ->
                        let r = Db.buffer_disk_ops m.db (replay t) in
                        (* publish [ts] as a legal snapshot only now,
                           with the whole write set applied: a
                           transaction beginning at [ts] can never see
                           this commit torn or half-missing *)
                        Versions.publish m.versions ts;
                        r))
              in
              (* enqueue under commit_m so WAL order = timestamp order;
                 the fsync wait happens outside, where the next committer
                 can already validate — that is what coalesces batches *)
              let ticket =
                match m.db.Db.disk with
                | Some d when disk_ops <> [] ->
                  Some (d, Disk.enqueue_group d disk_ops)
                | _ -> None
              in
              Ok (ts, ticket))
      in
      match outcome with
      | Error reason -> Error reason
      | Ok (ts, ticket) ->
        (match ticket with
        | Some (d, tk) -> Disk.wait_group d tk
        | None -> ());
        Ok ts
    with
    | exception e ->
      (* replay or WAL-flush failure: the transaction is over either
         way — never leave it Active and registered, pinning the pruning
         horizon forever.  (A flush failure leaves the replayed writes
         in memory; the exception reaches the caller, who must treat
         durability as unconfirmed.) *)
      t.state <- Aborted;
      unregister t;
      Counters.charge_txn_abort c;
      raise e
    | Error reason ->
      t.state <- Aborted;
      unregister t;
      Counters.charge_txn_conflict c;
      Error (`Conflict reason)
    | Ok ts ->
      t.state <- Committed ts;
      unregister t;
      Counters.charge_txn_commit c;
      maybe_prune m;
      Ok ts
  end

let run ?(retries = 8) m f =
  let rec go n =
    let txn = begin_ m in
    match f txn with
    | exception e ->
      if is_active txn then abort txn;
      raise e
    | x -> (
      match commit txn with
      | Ok ts -> Ok (x, ts)
      | Error (`Conflict _) when n > 0 -> go (n - 1)
      | Error e -> Error e)
  in
  go retries
