open Soqm_vml
module Db = Soqm_core.Db
module Engine = Soqm_core.Engine
module Exec = Soqm_physical.Exec
module Plan = Soqm_physical.Plan
module Relation = Soqm_algebra.Relation
module Txn = Soqm_txn.Txn

type t = {
  mgr : Txn.manager;
  engine : Engine.t;
  opt_m : Mutex.t;  (* the engine's plan cache is not domain-safe *)
  exec : Exec.ctx;
  mutable txn : Txn.t option;
}

let create ~mgr ~engine ~opt_m () =
  { mgr; engine; opt_m; exec = Engine.exec_ctx (Txn.db mgr); txn = None }

(* Queries execute at latest-committed state under the shared latch (no
   commit applies mid-query); optimization is serialized by [opt_m] but
   execution itself runs concurrently across sessions.  Counters are NOT
   reset — the server accumulates one workload-wide picture. *)
let run_query s src =
  let db = Txn.db s.mgr in
  let logical = Engine.logical_of_query db src in
  match Engine.safe_to_optimize db logical with
  | Ok () ->
    let compiled =
      Mutex.lock s.opt_m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.opt_m)
        (fun () -> snd (Engine.optimize_compiled s.engine logical))
    in
    Txn.with_read s.mgr (fun () -> Exec.run_compiled ~jobs:1 s.exec compiled)
  | Error _ ->
    (* potentially side-effecting method calls: run the plan as written,
       under the exclusive latch — its writes mutate the store and the
       version tables directly, which no concurrent reader may see
       mid-flight *)
    let plan = Plan.default_implementation logical in
    Txn.with_write s.mgr (fun () -> Exec.run ~jobs:1 s.exec plan)

let rows_of_relation r =
  let refs = Relation.refs r in
  let rows =
    List.map
      (fun tup ->
        List.map
          (fun name -> Option.value ~default:Value.Null (List.assoc_opt name tup))
          refs)
      (Relation.tuples r)
  in
  (refs, rows)

let handle s (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Ping -> Protocol.Done
  | Protocol.Query src ->
    let refs, rows = rows_of_relation (run_query s src) in
    Protocol.Rows (refs, rows)
  | Protocol.Begin -> (
    match s.txn with
    | Some _ -> Protocol.Error "transaction already open on this session"
    | None ->
      let txn = Txn.begin_ s.mgr in
      s.txn <- Some txn;
      Protocol.Started (Txn.begin_ts txn))
  | Protocol.Commit -> (
    match s.txn with
    | None -> Protocol.Error "no open transaction"
    | Some txn -> (
      s.txn <- None;
      match Txn.commit txn with
      | Ok ts -> Protocol.Committed ts
      | Error (`Conflict reason) -> Protocol.Conflict reason))
  | Protocol.Abort -> (
    match s.txn with
    | None -> Protocol.Error "no open transaction"
    | Some txn ->
      s.txn <- None;
      Txn.abort txn;
      Protocol.Done)
  | Protocol.Insert (cls, props) -> (
    match s.txn with
    | Some txn -> Protocol.Oid (Txn.insert txn ~cls props)
    | None -> (
      match Txn.run s.mgr (fun txn -> Txn.insert txn ~cls props) with
      | Ok (oid, _) -> Protocol.Oid oid
      | Error (`Conflict reason) -> Protocol.Conflict reason))
  | Protocol.Update (oid, prop, v) -> (
    match s.txn with
    | Some txn ->
      Txn.set_prop txn oid prop v;
      Protocol.Done
    | None -> (
      match Txn.run s.mgr (fun txn -> Txn.set_prop txn oid prop v) with
      | Ok ((), ts) -> Protocol.Committed ts
      | Error (`Conflict reason) -> Protocol.Conflict reason))
  | Protocol.Delete oid -> (
    match s.txn with
    | Some txn ->
      Txn.delete txn oid;
      Protocol.Done
    | None -> (
      match Txn.run s.mgr (fun txn -> Txn.delete txn oid) with
      | Ok ((), ts) -> Protocol.Committed ts
      | Error (`Conflict reason) -> Protocol.Conflict reason))
  | Protocol.Get (oid, prop) -> (
    match s.txn with
    | Some txn -> Protocol.Value (Txn.get_prop txn oid prop)
    | None -> (
      match Txn.run s.mgr (fun txn -> Txn.get_prop txn oid prop) with
      | Ok (v, _) -> Protocol.Value v
      | Error (`Conflict reason) -> Protocol.Conflict reason))
  | Protocol.Extent cls -> (
    match s.txn with
    | Some txn -> Protocol.Oids (Txn.extent txn cls)
    | None -> (
      match Txn.run s.mgr (fun txn -> Txn.extent txn cls) with
      | Ok (oids, _) -> Protocol.Oids oids
      | Error (`Conflict reason) -> Protocol.Conflict reason))

let serve s fd =
  let respond resp = Protocol.write_frame fd (Protocol.encode_response resp) in
  let rec loop () =
    match Protocol.read_frame fd with
    | exception End_of_file -> ()
    | frame ->
      let resp =
        match Protocol.decode_request frame with
        | exception Soqm_disk.Codec.Corrupt msg ->
          Protocol.Error ("bad request: " ^ msg)
        | req -> (
          try handle s req with
          | Not_found -> Protocol.Error "not found"
          | Invalid_argument msg | Failure msg -> Protocol.Error msg
          | Soqm_disk.Codec.Corrupt msg -> Protocol.Error msg
          | e -> Protocol.Error (Printexc.to_string e))
      in
      respond resp;
      loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* a dropped connection aborts its open transaction *)
      match s.txn with
      | Some txn when Txn.is_active txn ->
        s.txn <- None;
        Txn.abort txn
      | _ -> s.txn <- None)
    loop
