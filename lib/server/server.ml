module Db = Soqm_core.Db
module Engine = Soqm_core.Engine
module Pool = Soqm_physical.Pool
module Txn = Soqm_txn.Txn

type t = {
  db : Db.t;
  mgr : Txn.manager;
  engine : Engine.t;
  opt_m : Mutex.t;
  sock : Unix.file_descr;
  port : int;
  sessions : int;
  stop_flag : bool Atomic.t;
  served : int Atomic.t;
  conns_m : Mutex.t;
  mutable conns : Unix.file_descr list;  (* live session connections *)
}

let sock_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Server: not an inet socket"

let create ?listen ?(port = 0) ?(sessions = 4) ?(group_window = 0.002) db =
  let mgr = Txn.manager db in
  Txn.set_group_window mgr group_window;
  let engine = Engine.generate db in
  let sock =
    match listen with
    | Some fd -> fd
    | None ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 64
       with e ->
         Unix.close fd;
         raise e);
      fd
  in
  {
    db;
    mgr;
    engine;
    opt_m = Mutex.create ();
    sock;
    port = sock_port sock;
    sessions = max 1 sessions;
    stop_flag = Atomic.make false;
    served = Atomic.make 0;
    conns_m = Mutex.create ();
    conns = [];
  }

let port t = t.port
let manager t = t.mgr
let engine t = t.engine
let db t = t.db
let connections_served t = Atomic.get t.served

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      match Unix.accept t.sock with
      | exception
          Unix.Unix_error
            ((EBADF | EINVAL | ECONNABORTED | EINTR | EAGAIN), _, _) ->
        if not (Atomic.get t.stop_flag) then loop ()
      | conn, _ ->
        if Atomic.get t.stop_flag then Unix.close conn
        else begin
          Atomic.incr t.served;
          Mutex.lock t.conns_m;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_m;
          let session =
            Session.create ~mgr:t.mgr ~engine:t.engine ~opt_m:t.opt_m ()
          in
          (try Session.serve session conn with _ -> ());
          Mutex.lock t.conns_m;
          t.conns <- List.filter (fun fd -> fd <> conn) t.conns;
          Mutex.unlock t.conns_m;
          (try Unix.close conn with _ -> ());
          loop ()
        end
    end
  in
  loop ()

let serve t =
  (* the morsel pool carries the sessions: the caller is worker 0, the
     rest are pool domains.  With the pool thus occupied, query
     execution inside sessions runs jobs=1 (a nested Pool.run degrades
     to inline), which is the intended one-domain-per-session model. *)
  Pool.run (Pool.global ()) ~jobs:t.sessions (fun _ -> accept_loop t);
  try Unix.close t.sock with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (* sever live sessions: shutdown makes their blocked read_frame
       return EOF even if the client never closes its end *)
    Mutex.lock t.conns_m;
    let live = t.conns in
    Mutex.unlock t.conns_m;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    (* wake every worker parked in accept with a throwaway connection *)
    for _ = 1 to t.sessions do
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        (try
           Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    done
  end
