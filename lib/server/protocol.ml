open Soqm_vml
module Codec = Soqm_disk.Codec

(* ------------------------------------------------------------------ *)
(* frames: u32 LE length prefix + payload                              *)
(* ------------------------------------------------------------------ *)

let max_frame = 64 * 1024 * 1024

let write_all fd b =
  let len = Bytes.length b in
  let rec go off = if off < len then go (off + Unix.write fd b off (len - off)) in
  go 0

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = Unix.read fd b off (n - off) in
      if r = 0 then raise End_of_file;
      go (off + r)
    end
  in
  go 0;
  b

let read_frame fd =
  let hdr = read_exact fd 4 in
  let n = Int32.to_int (Bytes.get_int32_le hdr 0) in
  if n < 0 || n > max_frame then
    raise (Codec.Corrupt (Printf.sprintf "frame length %d out of range" n));
  Bytes.to_string (read_exact fd n)

(* ------------------------------------------------------------------ *)
(* messages                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Query of string
  | Begin
  | Commit
  | Abort
  | Insert of string * (string * Value.t) list
  | Update of Oid.t * string * Value.t
  | Delete of Oid.t
  | Get of Oid.t * string
  | Extent of string
  | Ping

type response =
  | Rows of string list * Value.t list list
  | Started of int
  | Committed of int
  | Done
  | Value of Value.t
  | Oid of Oid.t
  | Oids of Oid.t list
  | Conflict of string
  | Error of string

let write_oid buf oid =
  Codec.write_string buf (Oid.cls oid);
  Codec.write_uvarint buf (Oid.id oid)

let read_oid c =
  let cls = Codec.read_string c in
  let id = Codec.read_uvarint c in
  Oid.make ~cls ~id

let encode_request r =
  let buf = Buffer.create 64 in
  (match r with
  | Query src ->
    Buffer.add_char buf 'Q';
    Codec.write_string buf src
  | Begin -> Buffer.add_char buf 'B'
  | Commit -> Buffer.add_char buf 'C'
  | Abort -> Buffer.add_char buf 'A'
  | Insert (cls, props) ->
    Buffer.add_char buf 'I';
    Codec.write_string buf cls;
    Codec.write_props buf props
  | Update (oid, prop, v) ->
    Buffer.add_char buf 'U';
    write_oid buf oid;
    Codec.write_string buf prop;
    Codec.write_value buf v
  | Delete oid ->
    Buffer.add_char buf 'D';
    write_oid buf oid
  | Get (oid, prop) ->
    Buffer.add_char buf 'G';
    write_oid buf oid;
    Codec.write_string buf prop
  | Extent cls ->
    Buffer.add_char buf 'X';
    Codec.write_string buf cls
  | Ping -> Buffer.add_char buf 'P');
  Buffer.contents buf

let decode_request s =
  if String.length s = 0 then raise (Codec.Corrupt "empty request");
  let c = Codec.cursor ~pos:1 s in
  match s.[0] with
  | 'Q' -> Query (Codec.read_string c)
  | 'B' -> Begin
  | 'C' -> Commit
  | 'A' -> Abort
  | 'I' ->
    let cls = Codec.read_string c in
    let props = Codec.read_props c in
    Insert (cls, props)
  | 'U' ->
    let oid = read_oid c in
    let prop = Codec.read_string c in
    let v = Codec.read_value c in
    Update (oid, prop, v)
  | 'D' -> Delete (read_oid c)
  | 'G' ->
    let oid = read_oid c in
    Get (oid, Codec.read_string c)
  | 'X' -> Extent (Codec.read_string c)
  | 'P' -> Ping
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown request tag %c" t))

let encode_response r =
  let buf = Buffer.create 128 in
  (match r with
  | Rows (refs, rows) ->
    Buffer.add_char buf 'R';
    Codec.write_uvarint buf (List.length refs);
    List.iter (Codec.write_string buf) refs;
    Codec.write_uvarint buf (List.length rows);
    List.iter (fun row -> List.iter (Codec.write_value buf) row) rows
  | Started ts ->
    Buffer.add_char buf 'S';
    Codec.write_uvarint buf ts
  | Committed ts ->
    Buffer.add_char buf 'T';
    Codec.write_uvarint buf ts
  | Done -> Buffer.add_char buf 'K'
  | Value v ->
    Buffer.add_char buf 'V';
    Codec.write_value buf v
  | Oid oid ->
    Buffer.add_char buf 'O';
    write_oid buf oid
  | Oids oids ->
    Buffer.add_char buf 'L';
    Codec.write_uvarint buf (List.length oids);
    List.iter (write_oid buf) oids
  | Conflict msg ->
    Buffer.add_char buf 'F';
    Codec.write_string buf msg
  | Error msg ->
    Buffer.add_char buf 'E';
    Codec.write_string buf msg);
  Buffer.contents buf

let decode_response s =
  if String.length s = 0 then raise (Codec.Corrupt "empty response");
  let c = Codec.cursor ~pos:1 s in
  match s.[0] with
  | 'R' ->
    let nrefs = Codec.read_uvarint c in
    let refs = List.init nrefs (fun _ -> Codec.read_string c) in
    let nrows = Codec.read_uvarint c in
    let rows =
      List.init nrows (fun _ -> List.init nrefs (fun _ -> Codec.read_value c))
    in
    Rows (refs, rows)
  | 'S' -> Started (Codec.read_uvarint c)
  | 'T' -> Committed (Codec.read_uvarint c)
  | 'K' -> Done
  | 'V' -> Value (Codec.read_value c)
  | 'O' -> Oid (read_oid c)
  | 'L' ->
    let n = Codec.read_uvarint c in
    Oids (List.init n (fun _ -> read_oid c))
  | 'F' -> Conflict (Codec.read_string c)
  | 'E' -> Error (Codec.read_string c)
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown response tag %c" t))

(* ------------------------------------------------------------------ *)
(* client convenience                                                  *)
(* ------------------------------------------------------------------ *)

let connect ?(host = Unix.inet_addr_loopback) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (host, port))
   with e ->
     Unix.close fd;
     raise e);
  (* one small frame per request: latency matters more than packing *)
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

let roundtrip fd req =
  write_frame fd (encode_request req);
  decode_response (read_frame fd)
