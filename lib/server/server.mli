(** The concurrent serving subsystem: a TCP server speaking
    {!Protocol}, one {!Session} per connection, sessions carried by the
    PR-4 morsel domain pool.

    {!create} attaches a {!Soqm_txn.Txn.manager} (MVCC snapshots,
    first-committer-wins transactions, group commit) and generates one
    shared optimizer; {!serve} then blocks, running [sessions]
    accept-serve workers on {!Soqm_physical.Pool.global}.  Stop from
    another domain with {!stop} — it flips the stop flag and wakes each
    worker parked in [accept] with a throwaway connection.

    Concurrency model: queries run under the shared latch at
    latest-committed state (one optimizer mutex serializes planning, the
    plan cache is shared across sessions); transactions buffer writes
    and commit through the group-commit queue, so concurrent commits
    coalesce their WAL batches into fewer fsyncs. *)

type t

val create :
  ?listen:Unix.file_descr ->
  ?port:int ->
  ?sessions:int ->
  ?group_window:float ->
  Soqm_core.Db.t ->
  t
(** Bind a loopback listener on [port] (default 0 = ephemeral; read the
    actual port with {!port}) — or adopt [listen], an already
    bound+listening socket (tests and the bench driver pass one across
    [fork]).  [sessions] (default 4) is the number of concurrent
    connections served; [group_window] (seconds, default 2 ms) is the
    group-commit coalescing window. *)

val serve : t -> unit
(** Run the accept-serve loop; blocks until {!stop}.  Closes the
    listening socket on return. *)

val stop : t -> unit
(** Signal shutdown and wake the workers.  Idempotent; callable from
    any domain. *)

val port : t -> int
val manager : t -> Soqm_txn.Txn.manager
val engine : t -> Soqm_core.Engine.t
val db : t -> Soqm_core.Db.t

val connections_served : t -> int
