(** One client session: a single-threaded request loop over one
    connection.

    A session holds at most one open transaction.  DML outside a
    transaction auto-commits (a single-statement transaction, retried on
    conflict); DML inside buffers until [Commit].  Queries always
    execute at latest-committed state — under the manager's shared
    latch, through the shared engine's plan cache (guarded by the
    optimizer mutex) — and never reset the store's counters.
    Transactional reads ([Get]/[Extent] inside a transaction) are
    snapshot reads.

    A dropped connection aborts the session's open transaction. *)

module Txn = Soqm_txn.Txn

type t

val create :
  mgr:Txn.manager -> engine:Soqm_core.Engine.t -> opt_m:Mutex.t -> unit -> t

val handle : t -> Protocol.request -> Protocol.response
(** Process one request (exposed for in-process tests). *)

val serve : t -> Unix.file_descr -> unit
(** Read frames until the peer closes, responding to each in order. *)
