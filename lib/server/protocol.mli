(** The wire protocol: length-prefixed binary frames over TCP.

    Every message is one frame — a little-endian [u32] payload length
    followed by the payload: a one-byte tag and a body in the
    {!Soqm_disk.Codec} binary format (LEB128 varints, length-prefixed
    strings, tagged values).  One request yields exactly one response;
    requests on one connection are processed in order (the session is
    single-threaded), so a client may pipeline.

    Malformed input raises {!Soqm_disk.Codec.Corrupt}; a peer closing
    the connection surfaces as [End_of_file]. *)

open Soqm_vml

type request =
  | Query of string  (** VQL source; executes at latest-committed state *)
  | Begin  (** open a snapshot-isolation transaction on this session *)
  | Commit
  | Abort
  | Insert of string * (string * Value.t) list  (** class, initial props *)
  | Update of Oid.t * string * Value.t
  | Delete of Oid.t
  | Get of Oid.t * string  (** transactional property read *)
  | Extent of string
  | Ping

type response =
  | Rows of string list * Value.t list list
      (** column references + rows, values in reference order *)
  | Started of int  (** [Begin]: the snapshot timestamp *)
  | Committed of int  (** the commit timestamp *)
  | Done
  | Value of Value.t
  | Oid of Oid.t
  | Oids of Oid.t list
  | Conflict of string
      (** first-committer-wins refused the transaction; retry it *)
  | Error of string

val max_frame : int

(** {1 Frame transport} *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string
(** @raise End_of_file on a closed peer,
    [Soqm_disk.Codec.Corrupt] on an out-of-range length. *)

(** {1 Message codec} *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** {1 Client side} *)

val connect : ?host:Unix.inet_addr -> port:int -> unit -> Unix.file_descr
(** TCP connect (loopback by default) with [TCP_NODELAY] set. *)

val roundtrip : Unix.file_descr -> request -> response
(** Send one request, read one response. *)
