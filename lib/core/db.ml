open Soqm_vml
open Soqm_storage

type t = {
  store : Object_store.t;
  title_index : Hash_index.t;
  word_count_index : Sorted_index.t;
  text_index : Oid.t Soqm_ir.Inverted_index.t;
  mutable stats : Statistics.t;
  mutable maint : Soqm_maintenance.Maintenance.t option;
  mutable default_jobs : int;
  mutable disk : Soqm_disk.Store.t option;
  mutable disk_buf : Soqm_disk.Wal.op list ref option;
}

let register_external_methods t =
  let store = t.store in
  (* Document->select_by_index(title): one probe of the title index. *)
  Object_store.register_own_method store ~cls:"Document" ~meth:"select_by_index"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ (Value.Str _ as title) ] ->
           let oids =
             Hash_index.probe t.title_index (Object_store.counters store) title
           in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "select_by_index expects one string")));
  (* Paragraph->retrieve_by_string(s): one probe of the inverted index. *)
  Object_store.register_own_method store ~cls:"Paragraph"
    ~meth:"retrieve_by_string"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ Value.Str s ] ->
           Counters.charge_index_probe (Object_store.counters store);
           let oids = Soqm_ir.Inverted_index.lookup_all t.text_index s in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "retrieve_by_string expects one string")));
  (* Paragraph.contains_string(s): word containment on this paragraph's
     content — the expensive per-object external IR operation. *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"contains_string"
    (Object_store.Native
       (fun store recv args ->
         match recv, args with
         | Value.Obj oid, [ Value.Str s ] -> (
           match Object_store.get_prop store oid "content" with
           | Value.Str content ->
             let words = Soqm_ir.Tokenizer.vocabulary s in
             Value.Bool
               (words <> []
               && List.for_all (Soqm_ir.Tokenizer.contains_word content) words)
           | _ -> Value.Bool false)
         | _ -> raise (Runtime.Error "contains_string expects one string")));
  (* Paragraph.wordCount(): simulated expensive computation over the
     content; the value itself is precomputed at load time. *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"wordCount"
    (Object_store.Native
       (fun store recv args ->
         match recv, args with
         | Value.Obj oid, [] -> Object_store.get_prop store oid "word_count"
         | _ -> raise (Runtime.Error "wordCount expects no arguments")))

let refresh t =
  Hash_index.build t.title_index t.store;
  Sorted_index.build t.word_count_index t.store;
  Soqm_ir.Inverted_index.clear t.text_index;
  List.iter
    (fun oid ->
      match Object_store.peek_prop t.store oid "content" with
      | Value.Str text -> Soqm_ir.Inverted_index.add t.text_index ~key:oid ~text
      | _ -> ())
    (Object_store.extent t.store "Paragraph");
  (* in place, never reassigned: generated optimizers capture [t.stats];
     resync recollects itself, so don't scan twice *)
  match t.maint with
  | Some m -> Soqm_maintenance.Maintenance.resync m
  | None -> Statistics.recollect t.stats t.store

let attach_maintenance ?set_members t =
  match t.maint with
  | Some _ -> ()
  | None ->
    t.maint <-
      Some
        (Soqm_maintenance.Maintenance.attach ?set_members
           ~hash_indexes:[ t.title_index ]
           ~sorted_indexes:[ t.word_count_index ]
           ~text_indexes:[ ("Paragraph", "content", t.text_index) ]
           ~implications:[ Doc_knowledge.word_count_implication ]
           ~stats:t.stats t.store)

let maintenance t = t.maint

let create_empty ?(schema = Doc_schema.schema) ?(maintain = true) ?(jobs = 1) ()
    =
  let store = Object_store.create schema in
  Doc_schema.install_internal_methods store;
  let t =
    {
      store;
      title_index = Hash_index.create ~cls:"Document" ~prop:"title";
      word_count_index = Sorted_index.create ~cls:"Paragraph" ~prop:"word_count";
      text_index = Soqm_ir.Inverted_index.create ();
      stats = Statistics.collect store;
      maint = None;
      default_jobs = max 1 jobs;
      disk = None;
      disk_buf = None;
    }
  in
  register_external_methods t;
  if maintain then attach_maintenance t;
  t

let create ?schema ?(params = Datagen.default) ?(maintain = true) ?jobs () =
  (* bulk-load unmaintained (incremental index splices would be
     quadratic), then rebuild everything and attach the observers *)
  let t = create_empty ?schema ~maintain:false ?jobs () in
  Datagen.populate t.store params;
  refresh t;
  if maintain then attach_maintenance t;
  t

module Disk = Soqm_disk.Store
module Persist = Soqm_maintenance.Persist

(* ------------------------------------------------------------------ *)
(* persistent derived state                                            *)
(* ------------------------------------------------------------------ *)

(* Snapshot every derived structure — the three indexes, the maintained
   implication-set memberships, the statistics — into the persistent
   image form, stamped with the disk store's current checkpoint
   sequence. *)
let derived_image t d =
  let hash_section idx =
    let buckets = ref [] in
    Hash_index.iter idx (fun v oids ->
        buckets := (v, List.map Oid.id oids) :: !buckets);
    (Hash_index.cls idx, Hash_index.prop idx, !buckets)
  in
  let sorted_section idx =
    let entries = ref [] in
    Sorted_index.iter_entries idx (fun v oid ->
        entries := (v, Oid.id oid) :: !entries);
    ( Sorted_index.cls idx,
      Sorted_index.prop idx,
      Array.of_list (List.rev !entries) )
  in
  let text_section (cls, prop, idx) =
    let postings = ref [] in
    Soqm_ir.Inverted_index.iter_postings idx (fun w keys ->
        postings := (w, List.map Oid.id keys) :: !postings);
    (cls, prop, !postings)
  in
  let sets =
    match t.maint with
    | None -> []
    | Some m ->
      List.map
        (fun (name, members) ->
          ( name,
            List.map
              (fun (mem, tgt) ->
                ((Oid.cls mem, Oid.id mem), (Oid.cls tgt, Oid.id tgt)))
              members ))
        (Soqm_maintenance.Maintenance.set_members m)
  in
  {
    Persist.seq = Disk.checkpoint_seq d;
    hash = [ hash_section t.title_index ];
    sorted = [ sorted_section t.word_count_index ];
    text = [ text_section ("Paragraph", "content", t.text_index) ];
    sets;
    stats = Some (Statistics.snapshot t.stats);
  }

(* Write [derived.idx] next to an attached disk store.  Only meaningful
   right after a checkpoint (the image must describe exactly the
   checkpointed base state) and only with maintenance attached (without
   observers the in-memory indexes stop tracking DML, so persisting them
   would freeze stale contents). *)
let write_derived t =
  match (t.disk, t.maint) with
  | Some d, Some _ -> Persist.write ~dir:(Disk.dir d) (derived_image t d)
  | _ -> ()

(* [save] exports to the paged disk format: a database directory with
   one heap segment per class, a meta file and an (empty) WAL — plus
   the derived image when this Db maintains one. *)
let save t path =
  let dump = Object_store.export t.store in
  let d =
    Disk.create ~counters:(Object_store.counters t.store)
      ~schema:(Object_store.dump_schema dump) path
  in
  Disk.bulk_load d ~next_id:(Object_store.dump_next_id dump)
    (Object_store.dump_objects dump);
  (match t.maint with
  | Some _ -> Persist.write ~dir:path (derived_image t d)
  | None -> ());
  Disk.close ~checkpoint:false d

(* Translate store change events into WAL-committed disk batches.  The
   subscription happens after [refresh] (so resyncing derived state on
   open does not re-log records already on disk) and before
   [attach_maintenance] — DML events append their WAL records before the
   maintenance observers run and bump the epoch. *)
let attach_disk t d =
  t.disk <- Some d;
  let emit op =
    (* with a buffer installed (transactional commit application), the
       op joins the transaction's WAL batch instead of committing as its
       own fsynced singleton *)
    match t.disk_buf with
    | Some buf -> buf := op :: !buf
    | None -> Disk.apply d [ op ]
  in
  Object_store.subscribe t.store (function
    | Object_store.Created oid -> emit (Soqm_disk.Wal.Insert { oid; props = [] })
    | Object_store.Prop_set { oid; prop; old_value; new_value; _ } ->
      emit (Soqm_disk.Wal.Update { oid; prop; value = new_value; old_value })
    | Object_store.Deleted { oid; props } ->
      emit (Soqm_disk.Wal.Delete { oid; props }))

let buffer_disk_ops t f =
  let buf = ref [] in
  t.disk_buf <- Some buf;
  let r = Fun.protect ~finally:(fun () -> t.disk_buf <- None) f in
  (r, List.rev !buf)

(* The store-change events one replayed WAL op stands for.  Update ops
   carry their pre-images precisely so the index observers can replay
   them without the old record versions. *)
let events_of_op (op : Soqm_disk.Wal.op) =
  match op with
  | Soqm_disk.Wal.Insert { oid; props } ->
    Object_store.Created oid
    :: List.map
         (fun (prop, v) ->
           Object_store.Prop_set
             {
               oid;
               prop;
               old_value = Value.Null;
               new_value = v;
               origin = Object_store.User;
             })
         props
  | Soqm_disk.Wal.Update { oid; prop; value; old_value } ->
    [
      Object_store.Prop_set
        { oid; prop; old_value; new_value = value; origin = Object_store.User };
    ]
  | Soqm_disk.Wal.Delete { oid; props } ->
    [ Object_store.Deleted { oid; props } ]

(* Install a persisted index image into this Db's (empty) in-memory
   indexes.  False when a section this Db needs is absent or malformed —
   the caller falls back to [refresh], which rebuilds everything from
   base data regardless of what was partially installed. *)
let load_derived t (img : Persist.image) =
  let find cls prop xs =
    List.find_map
      (fun (c, p, x) ->
        if String.equal c cls && String.equal p prop then Some x else None)
      xs
  in
  let hcls = Hash_index.cls t.title_index in
  let scls = Sorted_index.cls t.word_count_index in
  match
    ( find hcls (Hash_index.prop t.title_index) img.Persist.hash,
      find scls (Sorted_index.prop t.word_count_index) img.Persist.sorted,
      find "Paragraph" "content" img.Persist.text )
  with
  | Some buckets, Some entries, Some postings -> (
    try
      List.iter
        (fun (v, ids) ->
          Hash_index.load_bucket t.title_index v
            (List.map (fun id -> Oid.make ~cls:hcls ~id) ids))
        buckets;
      Sorted_index.load_sorted t.word_count_index
        (Array.map (fun (v, id) -> (v, Oid.make ~cls:scls ~id)) entries);
      List.iter
        (fun (w, ids) ->
          Soqm_ir.Inverted_index.load_postings t.text_index ~word:w
            ~keys:(List.map (fun id -> Oid.make ~cls:"Paragraph" ~id) ids))
        postings;
      true
    with Invalid_argument _ -> false)
  | _ -> false

let of_disk ~attach ~maintain ~jobs ~pool_pages path =
  let counters = Counters.create () in
  let d = Disk.open_dir ?pool_pages ~counters path in
  (* the cold materialization scan: a prefetcher domain reads each
     segment ahead of the decoding consumer *)
  let rows, _pages = Disk.scan_all ~prefetch:true d in
  let dump =
    Object_store.make_dump ~schema:(Disk.schema d) ~next_id:(Disk.next_id d)
      rows
  in
  let store = Object_store.import ~counters dump in
  Doc_schema.install_internal_methods store;
  (* O(dirty) open: a derived image stamped with this open's checkpoint
     sequence covers exactly the checkpointed base state, so the derived
     rebuild reduces to loading it and replaying the WAL tail the base
     recovery already replayed.  Any mismatch (crash between checkpoint
     and image write, foreign file, corruption) falls back to the
     O(extent) rebuild below.  Without maintenance there are no
     observers to replay the tail through, so the image is unusable. *)
  let image =
    if maintain then
      match Persist.read ~dir:path with
      | Some img when img.Persist.seq = Disk.checkpoint_seq d -> Some img
      | _ -> None
    else None
  in
  let stats =
    match image with
    | Some { Persist.stats = Some snap; _ } ->
      Statistics.of_snapshot (Object_store.schema store) snap
    | _ -> Statistics.collect store
  in
  let t =
    {
      store;
      title_index = Hash_index.create ~cls:"Document" ~prop:"title";
      word_count_index = Sorted_index.create ~cls:"Paragraph" ~prop:"word_count";
      text_index = Soqm_ir.Inverted_index.create ();
      stats;
      maint = None;
      default_jobs = max 1 jobs;
      disk = None;
      disk_buf = None;
    }
  in
  register_external_methods t;
  (match image with
  | Some img when load_derived t img ->
    if attach then attach_disk t d;
    attach_maintenance
      ~set_members:
        (List.map
           (fun (name, members) ->
             ( name,
               List.map
                 (fun ((mc, mi), (tc, ti)) ->
                   (Oid.make ~cls:mc ~id:mi, Oid.make ~cls:tc ~id:ti))
                 members ))
           img.Persist.sets)
      t;
    (match t.maint with
    | Some m ->
      List.iter
        (fun op ->
          List.iter (Soqm_maintenance.Maintenance.observe m) (events_of_op op))
        (Disk.recovered_ops d)
    | None -> ());
    if not attach then Disk.close ~checkpoint:false d
  | _ ->
    refresh t;
    if attach then attach_disk t d else Disk.close ~checkpoint:false d;
    if maintain then attach_maintenance t);
  t

let open_disk ?(maintain = true) ?(jobs = 1) ?pool_pages path =
  of_disk ~attach:true ~maintain ~jobs ~pool_pages path

(* [load] is an import shim over the disk format: materialize and detach
   (read-only on the directory; recovery truncation aside). *)
let load ?(maintain = true) ?(jobs = 1) path =
  of_disk ~attach:false ~maintain ~jobs ~pool_pages:None path

(* Every Db-initiated checkpoint rewrites the derived image right after
   the base checkpoint: the image's stamp then matches the new meta
   sequence and the next open takes the fast path. *)
let checkpoint t =
  match t.disk with
  | Some d ->
    Disk.checkpoint d;
    write_derived t
  | None -> ()

(* In-memory contents are unaffected (the store already materialized the
   rows); only the disk representation changes. *)
let vacuum ?mode t cls =
  match t.disk with
  | None -> invalid_arg "Db.vacuum: no attached disk store"
  | Some d ->
    let n = Disk.vacuum ?mode d cls in
    (* the vacuum checkpointed, so the old image's stamp is stale *)
    write_derived t;
    n

let close t =
  match t.disk with
  | Some d ->
    Disk.checkpoint d;
    write_derived t;
    Disk.close ~checkpoint:false d;
    t.disk <- None
  | None -> ()

let set_jobs t jobs = t.default_jobs <- max 1 jobs

let counters t = Object_store.counters t.store

let with_fresh_counters t f =
  let c = counters t in
  Counters.reset c;
  let result = f () in
  (result, Counters.snapshot c)
