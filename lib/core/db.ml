open Soqm_vml
open Soqm_storage

type t = {
  store : Object_store.t;
  title_index : Hash_index.t;
  word_count_index : Sorted_index.t;
  text_index : Oid.t Soqm_ir.Inverted_index.t;
  mutable stats : Statistics.t;
  mutable maint : Soqm_maintenance.Maintenance.t option;
  mutable default_jobs : int;
  mutable disk : Soqm_disk.Store.t option;
  mutable disk_buf : Soqm_disk.Wal.op list ref option;
}

let register_external_methods t =
  let store = t.store in
  (* Document->select_by_index(title): one probe of the title index. *)
  Object_store.register_own_method store ~cls:"Document" ~meth:"select_by_index"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ (Value.Str _ as title) ] ->
           let oids =
             Hash_index.probe t.title_index (Object_store.counters store) title
           in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "select_by_index expects one string")));
  (* Paragraph->retrieve_by_string(s): one probe of the inverted index. *)
  Object_store.register_own_method store ~cls:"Paragraph"
    ~meth:"retrieve_by_string"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ Value.Str s ] ->
           Counters.charge_index_probe (Object_store.counters store);
           let oids = Soqm_ir.Inverted_index.lookup_all t.text_index s in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "retrieve_by_string expects one string")));
  (* Paragraph.contains_string(s): word containment on this paragraph's
     content — the expensive per-object external IR operation. *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"contains_string"
    (Object_store.Native
       (fun store recv args ->
         match recv, args with
         | Value.Obj oid, [ Value.Str s ] -> (
           match Object_store.get_prop store oid "content" with
           | Value.Str content ->
             let words = Soqm_ir.Tokenizer.vocabulary s in
             Value.Bool
               (words <> []
               && List.for_all (Soqm_ir.Tokenizer.contains_word content) words)
           | _ -> Value.Bool false)
         | _ -> raise (Runtime.Error "contains_string expects one string")));
  (* Paragraph.wordCount(): simulated expensive computation over the
     content; the value itself is precomputed at load time. *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"wordCount"
    (Object_store.Native
       (fun store recv args ->
         match recv, args with
         | Value.Obj oid, [] -> Object_store.get_prop store oid "word_count"
         | _ -> raise (Runtime.Error "wordCount expects no arguments")))

let refresh t =
  Hash_index.build t.title_index t.store;
  Sorted_index.build t.word_count_index t.store;
  Soqm_ir.Inverted_index.clear t.text_index;
  List.iter
    (fun oid ->
      match Object_store.peek_prop t.store oid "content" with
      | Value.Str text -> Soqm_ir.Inverted_index.add t.text_index ~key:oid ~text
      | _ -> ())
    (Object_store.extent t.store "Paragraph");
  (* in place, never reassigned: generated optimizers capture [t.stats];
     resync recollects itself, so don't scan twice *)
  match t.maint with
  | Some m -> Soqm_maintenance.Maintenance.resync m
  | None -> Statistics.recollect t.stats t.store

let attach_maintenance t =
  match t.maint with
  | Some _ -> ()
  | None ->
    t.maint <-
      Some
        (Soqm_maintenance.Maintenance.attach
           ~hash_indexes:[ t.title_index ]
           ~sorted_indexes:[ t.word_count_index ]
           ~text_indexes:[ ("Paragraph", "content", t.text_index) ]
           ~implications:[ Doc_knowledge.word_count_implication ]
           ~stats:t.stats t.store)

let maintenance t = t.maint

let create_empty ?(schema = Doc_schema.schema) ?(maintain = true) ?(jobs = 1) ()
    =
  let store = Object_store.create schema in
  Doc_schema.install_internal_methods store;
  let t =
    {
      store;
      title_index = Hash_index.create ~cls:"Document" ~prop:"title";
      word_count_index = Sorted_index.create ~cls:"Paragraph" ~prop:"word_count";
      text_index = Soqm_ir.Inverted_index.create ();
      stats = Statistics.collect store;
      maint = None;
      default_jobs = max 1 jobs;
      disk = None;
      disk_buf = None;
    }
  in
  register_external_methods t;
  if maintain then attach_maintenance t;
  t

let create ?schema ?(params = Datagen.default) ?(maintain = true) ?jobs () =
  (* bulk-load unmaintained (incremental index splices would be
     quadratic), then rebuild everything and attach the observers *)
  let t = create_empty ?schema ~maintain:false ?jobs () in
  Datagen.populate t.store params;
  refresh t;
  if maintain then attach_maintenance t;
  t

module Disk = Soqm_disk.Store

(* [save] exports to the paged disk format: a database directory with
   one heap segment per class, a meta file and an (empty) WAL. *)
let save t path =
  let dump = Object_store.export t.store in
  let d =
    Disk.create ~counters:(Object_store.counters t.store)
      ~schema:(Object_store.dump_schema dump) path
  in
  Disk.bulk_load d ~next_id:(Object_store.dump_next_id dump)
    (Object_store.dump_objects dump);
  Disk.close ~checkpoint:false d

(* Translate store change events into WAL-committed disk batches.  The
   subscription happens after [refresh] (so resyncing derived state on
   open does not re-log records already on disk) and before
   [attach_maintenance] — DML events append their WAL records before the
   maintenance observers run and bump the epoch. *)
let attach_disk t d =
  t.disk <- Some d;
  let emit op =
    (* with a buffer installed (transactional commit application), the
       op joins the transaction's WAL batch instead of committing as its
       own fsynced singleton *)
    match t.disk_buf with
    | Some buf -> buf := op :: !buf
    | None -> Disk.apply d [ op ]
  in
  Object_store.subscribe t.store (function
    | Object_store.Created oid -> emit (Soqm_disk.Wal.Insert { oid; props = [] })
    | Object_store.Prop_set { oid; prop; new_value; _ } ->
      emit (Soqm_disk.Wal.Update { oid; prop; value = new_value })
    | Object_store.Deleted { oid; _ } ->
      emit (Soqm_disk.Wal.Delete { oid }))

let buffer_disk_ops t f =
  let buf = ref [] in
  t.disk_buf <- Some buf;
  let r = Fun.protect ~finally:(fun () -> t.disk_buf <- None) f in
  (r, List.rev !buf)

let of_disk ~attach ~maintain ~jobs ~pool_pages path =
  let counters = Counters.create () in
  let d = Disk.open_dir ?pool_pages ~counters path in
  (* the cold materialization scan: a prefetcher domain reads each
     segment ahead of the decoding consumer *)
  let rows, _pages = Disk.scan_all ~prefetch:true d in
  let dump =
    Object_store.make_dump ~schema:(Disk.schema d) ~next_id:(Disk.next_id d)
      rows
  in
  let store = Object_store.import ~counters dump in
  Doc_schema.install_internal_methods store;
  let t =
    {
      store;
      title_index = Hash_index.create ~cls:"Document" ~prop:"title";
      word_count_index = Sorted_index.create ~cls:"Paragraph" ~prop:"word_count";
      text_index = Soqm_ir.Inverted_index.create ();
      stats = Statistics.collect store;
      maint = None;
      default_jobs = max 1 jobs;
      disk = None;
      disk_buf = None;
    }
  in
  register_external_methods t;
  refresh t;
  if attach then attach_disk t d else Disk.close ~checkpoint:false d;
  if maintain then attach_maintenance t;
  t

let open_disk ?(maintain = true) ?(jobs = 1) ?pool_pages path =
  of_disk ~attach:true ~maintain ~jobs ~pool_pages path

(* [load] is an import shim over the disk format: materialize and detach
   (read-only on the directory; recovery truncation aside). *)
let load ?(maintain = true) ?(jobs = 1) path =
  of_disk ~attach:false ~maintain ~jobs ~pool_pages:None path

let checkpoint t =
  match t.disk with Some d -> Disk.checkpoint d | None -> ()

(* In-memory contents are unaffected (the store already materialized the
   rows); only the disk representation changes. *)
let vacuum t cls =
  match t.disk with
  | None -> invalid_arg "Db.vacuum: no attached disk store"
  | Some d -> Disk.vacuum d cls

let close t =
  match t.disk with
  | Some d ->
    Disk.close d;
    t.disk <- None
  | None -> ()

let set_jobs t jobs = t.default_jobs <- max 1 jobs

let counters t = Object_store.counters t.store

let with_fresh_counters t f =
  let c = counters t in
  Counters.reset c;
  let result = f () in
  (result, Counters.snapshot c)
