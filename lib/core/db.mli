(** A ready-to-query document database: store + access paths + statistics.

    Bundles the object store with the two class-level access paths the
    example's external methods rely on — the user-defined hash index on
    [Document.title] behind [Document→select_by_index] and the inverted
    text index behind [Paragraph→retrieve_by_string] — and the statistics
    snapshot the optimizer's cost model reads. *)

open Soqm_vml
open Soqm_storage

type t = {
  store : Object_store.t;
  title_index : Hash_index.t;
  word_count_index : Sorted_index.t;
      (** ordered index on [Paragraph.word_count] — the range-scan access
          path *)
  text_index : Oid.t Soqm_ir.Inverted_index.t;
  mutable stats : Statistics.t;
      (** recollected in place, never reassigned — generated optimizers
          capture this value *)
  mutable maint : Soqm_maintenance.Maintenance.t option;
      (** incremental maintenance, when attached (the default) *)
  mutable default_jobs : int;
      (** worker count engines generated from this database execute
          with unless overridden per run; 1 (the default) is the serial
          block executor *)
  mutable disk : Soqm_disk.Store.t option;
      (** the attached paged disk store when the database was opened
          with {!open_disk}; [None] for purely in-memory databases *)
  mutable disk_buf : Soqm_disk.Wal.op list ref option;
      (** when set, the disk observer appends WAL operations here instead
          of committing each one individually — see {!buffer_disk_ops} *)
}

val create :
  ?schema:Soqm_vml.Schema.t ->
  ?params:Datagen.params ->
  ?maintain:bool ->
  ?jobs:int ->
  unit ->
  t
(** Build the document schema (or a cost-variant from
    {!Doc_schema.make}), install all method implementations (internal
    bodies and external natives), populate with {!Datagen}, build both
    indexes, and collect statistics.  Unless [maintain:false], then
    attach incremental maintenance (after the bulk load — point updates
    during population would be quadratic), so subsequent DML keeps
    indexes, the [largeParagraphs] implication sets and statistics
    consistent automatically. *)

val create_empty :
  ?schema:Soqm_vml.Schema.t -> ?maintain:bool -> ?jobs:int -> unit -> t
(** Same, but with no data; maintenance (default on) attaches
    immediately, so objects created through [store] are indexed as they
    arrive.  For bulk loads pass [~maintain:false], populate, {!refresh},
    or use {!create}. *)

val refresh : t -> unit
(** Rebuild indexes and statistics after manual (unobserved) data
    changes; with maintenance attached also resyncs the maintained
    implication sets and bumps the maintenance epoch. *)

val maintenance : t -> Soqm_maintenance.Maintenance.t option
(** The attached maintenance subsystem, if any. *)

val save : t -> string -> unit
(** Export the database's data to a paged disk database directory
    ([Soqm_disk]): one slotted-page heap segment per class, a meta file
    with the binary-encoded schema, and an empty WAL.  With maintenance
    attached, the derived state (index contents, implication-set
    memberships, statistics) is also persisted as [derived.idx]
    ([Soqm_maintenance.Persist]), stamped with the new store's
    checkpoint sequence, so the next open skips the derived rebuild.
    Overwrites any previous database in the directory. *)

val load : ?maintain:bool -> ?jobs:int -> string -> t
(** Import shim over the disk format: open the directory (running WAL
    recovery), materialize every record into a fresh in-memory store
    through the prefetching scan, then detach from the disk files —
    subsequent DML is {e not} written back (use {!open_disk} for that).
    Re-registers every method implementation of the document schema,
    then restores derived state the O(dirty) way when possible: a
    [derived.idx] image whose stamp matches the store's checkpoint
    sequence is loaded wholesale and only the recovered WAL tail is
    replayed through the maintenance observers.  A missing, stale or
    corrupt image (or [maintain:false]) falls back to the O(extent)
    rebuild of indexes and statistics.  Only meaningful for databases of
    the document schema (possibly with cost-variant method declarations).
    @raise Soqm_disk.Store.Format_error on foreign or corrupt
    directories. *)

val open_disk :
  ?maintain:bool -> ?jobs:int -> ?pool_pages:int -> string -> t
(** Like {!load}, but stay attached to the disk store: every subsequent
    store change event appends a checksummed, fsynced WAL record {e
    before} the maintenance observers bump the epoch, and is applied to
    the buffer-pooled pages.  [pool_pages] sizes the buffer pool.  The
    attached store is {!field-t.disk}; full scans of engines generated
    from this database drive its page traffic (the [pages=] column of
    [explain --analyze]).  Close with {!close} to checkpoint and release
    the files. *)

val buffer_disk_ops : t -> (unit -> 'a) -> 'a * Soqm_disk.Wal.op list
(** Run [f] with disk write-back buffered: store change events that would
    each commit their own WAL batch are instead collected (in event
    order) and returned alongside [f]'s result, for the caller to commit
    as {e one} batch — the transaction manager applies a whole write set
    this way and commits it through the group-commit queue.  For a
    database with no attached disk store the op list is empty.  Not
    reentrant; callers must serialize (commit application already runs
    under the transaction manager's commit mutex). *)

val vacuum : ?mode:[ `Columnar | `Cluster ] -> t -> string -> int
(** Rewrite one class of the attached disk store
    ({!Soqm_disk.Store.vacuum}); returns the rows rewritten.
    [`Columnar] (default) moves the class to a columnar segment;
    [`Cluster] repacks it in parent-child traversal order (heap pages,
    or chunk boundaries for an already-columnar class).  The in-memory
    image is unaffected — only the disk representation (and the scan
    traffic model) changes.  The derived image is rewritten afterwards
    so the vacuum's checkpoint does not invalidate it.
    @raise Invalid_argument when the database has no attached disk store.
    @raise Soqm_disk.Store.Format_error for a class not in the schema. *)

val checkpoint : t -> unit
(** Flush dirty pages, fsync the segments and truncate the WAL of the
    attached disk store, then rewrite [derived.idx] to match the new
    checkpoint sequence; no-op for in-memory databases. *)

val close : t -> unit
(** Checkpoint (including the derived image) and detach the disk store,
    if any.  The database remains usable in memory; further DML is no
    longer made durable. *)

val set_jobs : t -> int -> unit
(** Set {!field-t.default_jobs} (clamped to at least 1). *)

val counters : t -> Counters.t
(** The store's cost counters. *)

val with_fresh_counters : t -> (unit -> 'a) -> 'a * Counters.t
(** Run a computation with counters reset, returning its result and the
    counters accumulated during the run. *)
