open Soqm_vml
open Soqm_algebra
open Soqm_storage
open Soqm_optimizer
module Saturate = Soqm_knowledge.Saturate
module Check = Soqm_knowledge.Check

type cache_entry = {
  result : Search.result;
  entry_epoch : int;  (* maintenance epoch the plan was produced under *)
  mutable last_used : int;
  mutable compiled : Soqm_physical.Plan.compiled option;
      (* slot-compiled best plan, filled on first execution: a cache hit
         skips both the rule search and plan compilation *)
}

type t = {
  obj_store : Object_store.t;
  exec : Soqm_physical.Exec.ctx;
  builtins : Rule.transformation list;  (* filtered predefined rules *)
  (* the rule set is rebuilt by knowledge DML and (re)saturation, so the
     compiled rules and the knowledge base behind them are mutable *)
  mutable transformations : Rule.transformation list;
  mutable implementations : Rule.implementation list;
  mutable declared_specs : Soqm_semantics.Equivalence.t list;
  mutable facts : Saturate.fact list;  (* declared + derived knowledge *)
  mutable saturation : Saturate.config option;  (* None = saturation off *)
  mutable sat_stats : Saturate.stats option;
  mutable provenance : (string * string) list;  (* spec name → trace *)
  mutable checker_install : Object_store.t -> unit;
  opt_ctx : Rule.opt_ctx;
  config : Search.config;
  (* optimization results keyed by the alpha-canonical logical term, so
     re-running a query (or an alpha-variant of it) skips the search;
     bounded LRU, entries from a stale maintenance epoch count as misses *)
  plan_cache : (Restricted.t, cache_entry) Hashtbl.t;
  cache_capacity : int;
  mutable epoch_of : unit -> int;
  mutable knowledge_epoch : int;
      (* bumped by every rule-set rebuild; added to the maintenance epoch
         so knowledge DML epoch-invalidates cached plans *)
  mutable cache_tick : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable jobs : int;  (* default worker count for executions *)
}

let exec_ctx (database : Db.t) : Soqm_physical.Exec.ctx =
  {
    Soqm_physical.Exec.store = database.Db.store;
    probe_index =
      (fun ~cls ~prop key ->
        if String.equal cls "Document" && String.equal prop "title" then
          Some
            (Hash_index.probe database.Db.title_index
               (Object_store.counters database.Db.store)
               key)
        else None);
    probe_range =
      (fun ~cls ~prop ~lo ~hi ->
        if String.equal cls "Paragraph" && String.equal prop "word_count" then
          Some
            (Sorted_index.probe_range database.Db.word_count_index
               (Object_store.counters database.Db.store)
               ~lo ~hi)
        else None);
    scan_cost =
      (fun ~cls ->
        match database.Db.disk with
        | Some d -> Some (Soqm_disk.Store.scan_cost d cls)
        | None -> None);
  }

let opt_ctx_of (database : Db.t) : Rule.opt_ctx =
  {
    Rule.schema = Object_store.schema database.Db.store;
    stats = database.Db.stats;
    has_index =
      (fun ~cls ~prop -> String.equal cls "Document" && String.equal prop "title");
    has_range_index =
      (fun ~cls ~prop ->
        String.equal cls "Paragraph" && String.equal prop "word_count");
  }

(* Compile every knowledge fact into rules.  A {e declared}
   specification that no rule schema covers still raises [Underivable]
   (the author must be told); a saturation-derived one is merely
   knowledge the rule language cannot express — skipped, it remains
   checkable but contributes no rewrite. *)
let rules_of_facts schema facts =
  let ts, is =
    List.fold_left
      (fun (ts, is) (f : Saturate.fact) ->
        match Soqm_semantics.Derive.rules_of_specs schema [ f.Saturate.spec ] with
        | dt, di -> (dt :: ts, di :: is)
        | exception Soqm_semantics.Derive.Underivable _
          when f.Saturate.prov <> Saturate.Declared ->
          (ts, is))
      ([], []) facts
  in
  (List.concat (List.rev ts), List.concat (List.rev is))

let rebuild_rules t =
  let schema = Object_store.schema t.obj_store in
  let facts =
    match t.saturation with
    | None ->
      t.sat_stats <- None;
      List.map
        (fun spec -> { Saturate.spec; prov = Saturate.Declared; depth = 0 })
        t.declared_specs
    | Some config ->
      let counters = Object_store.counters t.obj_store in
      let facts, stats =
        Saturate.run ~config ~counters schema t.declared_specs
      in
      t.sat_stats <- Some stats;
      facts
  in
  t.facts <- facts;
  t.provenance <- Saturate.provenance_alist facts;
  let derived_t, derived_i = rules_of_facts schema facts in
  t.transformations <- t.builtins @ derived_t;
  t.implementations <- Builtin_rules.implementations @ derived_i;
  t.knowledge_epoch <- t.knowledge_epoch + 1

let make_engine ~store ~exec ~stats ~has_index ~has_range_index
    ~builtin_filter ~specs ~inverse_links ~saturate ~config ~cache_capacity
    ~jobs =
  let schema = Object_store.schema store in
  let specs =
    if inverse_links then
      specs @ Soqm_semantics.Equivalence.from_inverse_links schema
    else specs
  in
  let builtins =
    List.filter
      (fun (r : Rule.transformation) -> builtin_filter r.Rule.t_name)
      Builtin_rules.transformations
  in
  let t =
    {
      obj_store = store;
      exec;
      builtins;
      transformations = [];
      implementations = [];
      declared_specs = specs;
      facts = [];
      saturation = (if saturate then Some Saturate.default_config else None);
      sat_stats = None;
      provenance = [];
      checker_install = (fun _ -> ());
      opt_ctx = { Rule.schema; stats; has_index; has_range_index };
      config;
      plan_cache = Hashtbl.create 32;
      cache_capacity;
      epoch_of = (fun () -> 0);
      knowledge_epoch = 0;
      cache_tick = 0;
      cache_hits = 0;
      cache_misses = 0;
      jobs = max 1 jobs;
    }
  in
  rebuild_rules t;
  t

let generate ?(classes = Doc_knowledge.all_classes) ?(extra_specs = [])
    ?(builtin_filter = fun _ -> true) ?(saturate = false)
    ?(config = Search.default_config) ?(cache_capacity = 128)
    (database : Db.t) =
  (* inverse-link knowledge is one of the document knowledge classes, so
     the generic inverse derivation stays off here *)
  let specs = Doc_knowledge.specs ~classes () @ extra_specs in
  let t =
    make_engine ~store:database.Db.store ~exec:(exec_ctx database)
      ~stats:database.Db.stats
      ~has_index:(opt_ctx_of database).Rule.has_index
      ~has_range_index:(opt_ctx_of database).Rule.has_range_index
      ~builtin_filter ~specs ~inverse_links:false ~saturate ~config
      ~cache_capacity ~jobs:database.Db.default_jobs
  in
  (* the checker's candidate stores are index-free: give them the
     internal method bodies plus scan implementations of the externals *)
  t.checker_install <-
    (fun store ->
      Doc_schema.install_internal_methods store;
      Doc_schema.install_scan_methods store);
  (* knowledge-preserving DML leaves cached plans valid; a statistics
     recollect (or resync) bumps the maintenance epoch and invalidates *)
  (match Db.maintenance database with
  | Some m -> t.epoch_of <- (fun () -> Soqm_maintenance.Maintenance.epoch m)
  | None -> ());
  t

let generate_custom ?(specs = []) ?(inverse_links = true) ?(saturate = false)
    ?(config = Search.default_config)
    ?(has_range_index = fun ~cls:_ ~prop:_ -> false) ?(cache_capacity = 128)
    ?(jobs = 1) ~store ~exec_ctx:exec ~has_index () =
  make_engine ~store ~exec ~stats:(Statistics.collect store) ~has_index
    ~has_range_index ~builtin_filter:(fun _ -> true) ~specs ~inverse_links
    ~saturate ~config ~cache_capacity ~jobs

let store t = t.obj_store
let set_jobs t jobs = t.jobs <- max 1 jobs
let jobs t = t.jobs

let rule_count t =
  List.length t.transformations + List.length t.implementations

let logical_of_store store src =
  let schema = Object_store.schema store in
  Translate.of_general (Soqm_vql.To_algebra.query_to_algebra schema src)

let logical_of_query (database : Db.t) src = logical_of_store database.Db.store src

let safe_with_schema schema logical =
  match
    List.find_opt
      (fun m -> not (Schema.method_is_pure schema ~meth:m))
      (Restricted.methods_used logical)
  with
  | None -> Ok ()
  | Some m -> Error (Printf.sprintf "method %S is not declared side-effect free" m)

let safe_to_optimize (database : Db.t) logical =
  safe_with_schema (Object_store.schema database.Db.store) logical

let set_epoch_source t f = t.epoch_of <- f

(* ------------------------------------------------------------------ *)
(* knowledge                                                           *)
(* ------------------------------------------------------------------ *)

let knowledge t = t.facts
let declared_specs t = t.declared_specs
let saturation_stats t = t.sat_stats

let set_saturation t config =
  t.saturation <- config;
  rebuild_rules t

let provenance t rule_name =
  (* Derive suffixes equivalence rule names with "/map"/"/flat"; the
     knowledge base knows the bare specification name *)
  let base =
    match String.index_opt rule_name '/' with
    | Some i -> String.sub rule_name 0 i
    | None -> rule_name
  in
  List.assoc_opt base t.provenance

let add_specs t specs =
  let schema = Object_store.schema t.obj_store in
  List.iter
    (fun spec ->
      match Soqm_semantics.Equivalence.validate schema spec with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Engine.add_specs: " ^ msg))
    specs;
  t.declared_specs <- t.declared_specs @ specs;
  rebuild_rules t

let retract_spec t name =
  let keep =
    List.filter
      (fun s -> not (String.equal (Soqm_semantics.Equivalence.name s) name))
      t.declared_specs
  in
  if List.length keep = List.length t.declared_specs then false
  else begin
    t.declared_specs <- keep;
    rebuild_rules t;
    true
  end

let set_checker_install t f = t.checker_install <- f

let check_rules ?config ?install t =
  let install = Option.value ~default:t.checker_install install in
  let counters = Object_store.counters t.obj_store in
  Check.check_specs ?config ~install ~counters ~trusted:t.declared_specs
    (Object_store.schema t.obj_store)
    (Saturate.specs t.facts)

let cache_stats t = (t.cache_hits, t.cache_misses)
let cache_size t = Hashtbl.length t.plan_cache

let evict_lru t =
  if Hashtbl.length t.plan_cache >= t.cache_capacity then (
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, age) when e.last_used >= age -> ()
        | _ -> victim := Some (key, e.last_used))
      t.plan_cache;
    match !victim with
    | Some (key, _) -> Hashtbl.remove t.plan_cache key
    | None -> ())

let optimize_entry t logical =
  let key = Restricted.alpha_canonical logical in
  (* both summands only ever grow, so the sum strictly increases on any
     maintenance or knowledge change — stale entries can never collide
     with a current epoch *)
  let epoch = t.epoch_of () + t.knowledge_epoch in
  t.cache_tick <- t.cache_tick + 1;
  let counters = Object_store.counters t.obj_store in
  match Hashtbl.find_opt t.plan_cache key with
  | Some cached when cached.entry_epoch = epoch ->
    cached.last_used <- t.cache_tick;
    t.cache_hits <- t.cache_hits + 1;
    Counters.charge_plan_cache_hit counters;
    cached
  | stale ->
    (* a hit from an older epoch is invalid: knowledge or statistics
       changed since the plan was costed *)
    if Option.is_some stale then Hashtbl.remove t.plan_cache key;
    t.cache_misses <- t.cache_misses + 1;
    Counters.charge_plan_cache_miss counters;
    let result =
      Search.optimize ~config:t.config t.opt_ctx t.transformations
        t.implementations logical
    in
    evict_lru t;
    let entry =
      { result; entry_epoch = epoch; last_used = t.cache_tick; compiled = None }
    in
    Hashtbl.replace t.plan_cache key entry;
    entry

let optimize t logical = (optimize_entry t logical).result

let optimize_compiled t logical =
  let entry = optimize_entry t logical in
  let compiled =
    match entry.compiled with
    | Some c -> c
    | None ->
      let c = Soqm_physical.Exec.compile t.exec entry.result.Search.best_plan in
      entry.compiled <- Some c;
      c
  in
  (entry.result, compiled)

let optimize_query t src = optimize t (logical_of_store t.obj_store src)

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let insert t ~cls props = Object_store.create_object t.obj_store ~cls props
let update t oid ~prop v = Object_store.set_prop t.obj_store oid prop v
let delete t oid = Object_store.delete_object t.obj_store oid

type report = {
  result : Relation.t;
  counters : Counters.t;
  opt : Search.result option;
  elapsed_s : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let execute_with ~jobs exec store plan opt =
  let c = Object_store.counters store in
  Counters.reset c;
  let result, elapsed_s =
    timed (fun () -> Soqm_physical.Exec.run ~jobs exec plan)
  in
  { result; counters = Counters.snapshot c; opt; elapsed_s }

let run_naive ?jobs (database : Db.t) src =
  let jobs = Option.value ~default:database.Db.default_jobs jobs in
  let logical = logical_of_query database src in
  let plan = Soqm_physical.Plan.default_implementation logical in
  execute_with ~jobs (exec_ctx database) database.Db.store plan None

let run_query ?jobs t src =
  let jobs = Option.value ~default:t.jobs jobs in
  let logical = logical_of_store t.obj_store src in
  let plan = Soqm_physical.Plan.default_implementation logical in
  execute_with ~jobs t.exec t.obj_store plan None

let execute_compiled_with ~jobs exec store compiled opt =
  let c = Object_store.counters store in
  Counters.reset c;
  let result, elapsed_s =
    timed (fun () -> Soqm_physical.Exec.run_compiled ~jobs exec compiled)
  in
  { result; counters = Counters.snapshot c; opt; elapsed_s }

let run_optimized ?jobs t src =
  let jobs = Option.value ~default:t.jobs jobs in
  let logical = logical_of_store t.obj_store src in
  match safe_with_schema (Object_store.schema t.obj_store) logical with
  | Ok () ->
    let opt, compiled = optimize_compiled t logical in
    execute_compiled_with ~jobs t.exec t.obj_store compiled (Some opt)
  | Error _ ->
    (* a potentially updating query: execute as written *)
    execute_with ~jobs t.exec t.obj_store
      (Soqm_physical.Plan.default_implementation logical)
      None

let run_logical_reference (database : Db.t) src =
  let schema = Object_store.schema database.Db.store in
  Eval.run database.Db.store (Soqm_vql.To_algebra.query_to_algebra schema src)

let run_reference (database : Db.t) src =
  let schema = Object_store.schema database.Db.store in
  let term = Soqm_vql.To_algebra.query_to_algebra schema src in
  let c = Object_store.counters database.Db.store in
  Counters.reset c;
  let result, elapsed_s = timed (fun () -> Eval.run database.Db.store term) in
  { result; counters = Counters.snapshot c; opt = None; elapsed_s }
