(** The end-to-end query pipeline: parse → typecheck → translate →
    optimize → execute, against a {!Db}.

    This is the "individual optimizer module generated for each schema"
    of Section 7: {!generate} derives the schema-specific rules once and
    packages them with the predefined rule set; the result optimizes and
    runs any number of queries. *)

open Soqm_vml
open Soqm_algebra
open Soqm_optimizer

type t
(** A generated optimizer bound to a database. *)

val generate :
  ?classes:Doc_knowledge.rule_class list ->
  ?extra_specs:Soqm_semantics.Equivalence.t list ->
  ?builtin_filter:(string -> bool) ->
  ?saturate:bool ->
  ?config:Search.config ->
  ?cache_capacity:int ->
  Db.t ->
  t
(** Generate the optimizer for the document schema: the predefined
    (builtin) rules plus the rules derived from the knowledge classes
    selected (default: all) and any extra specifications.
    [builtin_filter] keeps only the predefined transformation rules whose
    name it accepts (default: all) — used by the ablation experiments.
    [saturate] (default [false]) additionally closes the declared
    knowledge under {!Soqm_knowledge.Saturate} and compiles the derived
    specifications into rules too. *)

val generate_custom :
  ?specs:Soqm_semantics.Equivalence.t list ->
  ?inverse_links:bool ->
  ?saturate:bool ->
  ?config:Search.config ->
  ?has_range_index:(cls:string -> prop:string -> bool) ->
  ?cache_capacity:int ->
  ?jobs:int ->
  store:Object_store.t ->
  exec_ctx:Soqm_physical.Exec.ctx ->
  has_index:(cls:string -> prop:string -> bool) ->
  unit ->
  t
(** Generate an optimizer for an arbitrary schema/store: predefined rules
    plus the rules derived from [specs] and (when [inverse_links], the
    default) from the schema's inverse-link declarations.  Statistics are
    collected from the store at generation time.  This is the paper's
    per-schema optimizer generation for user schemas; {!generate} is the
    document-schema convenience. *)

val store : t -> Object_store.t
val rule_count : t -> int
(** Number of transformation + implementation rules (for the scaling
    experiment). *)

val set_jobs : t -> int -> unit
(** Default worker count for this engine's executions (clamped to at
    least 1).  {!generate} seeds it from the database's
    [default_jobs]. *)

val jobs : t -> int

val exec_ctx : Db.t -> Soqm_physical.Exec.ctx
(** Execution context exposing the database's value indexes. *)

val opt_ctx_of : Db.t -> Rule.opt_ctx
(** Optimizer context (schema, statistics, available indexes). *)

val logical_of_query : Db.t -> string -> Restricted.t
(** Parse, typecheck and translate a VQL string into the restricted
    algebra (no optimization). *)

val safe_to_optimize : Db.t -> Restricted.t -> (unit, string) result
(** Queries may invoke methods with side effects (hence ACCESS rather
    than SELECT, Section 2.2); reordering or memoizing such calls is
    unsound.  [Error] names the first method of the term not declared
    side-effect free. *)

val optimize : t -> Restricted.t -> Search.result
(** Run the rule-based search — or skip it entirely on a plan-cache hit.
    The cache is a bounded LRU keyed by the alpha-canonical logical term
    and guarded by the maintenance epoch: knowledge-preserving DML leaves
    cached plans valid, while epoch bumps (statistics recollects,
    resyncs, explicit invalidation) turn every older entry into a miss.
    Hits and misses are counted both cumulatively ({!cache_stats}) and on
    the store's {!Counters} ([plan_cache_hits]/[plan_cache_misses]). *)

val optimize_compiled : t -> Restricted.t -> Search.result * Soqm_physical.Plan.compiled
(** Like {!optimize}, but also returns the slot-compiled best plan.  The
    compiled form is cached alongside the search result, so a plan-cache
    hit skips both the rule search and plan compilation; {!run_optimized}
    executes through this path. *)

val optimize_query : t -> string -> Search.result
(** Parse, typecheck and translate against the engine's schema, then
    optimize. *)

val set_epoch_source : t -> (unit -> int) -> unit
(** Override where {!optimize} reads the current maintenance epoch.
    {!generate} wires this to the database's attached maintenance
    automatically; default is the constant 0 (cache never invalidates).
    The engine adds its own knowledge epoch on top, so rule-set rebuilds
    invalidate cached plans regardless of the source. *)

(** {1 Knowledge}

    The engine owns a declared knowledge base (the specifications it was
    generated from) and, when saturation is on, its closure under
    {!Soqm_knowledge.Saturate}.  Changing the knowledge — adding or
    retracting specifications, toggling saturation — rebuilds the rule
    set and bumps the knowledge epoch, so every cached plan from the old
    rule set epoch-invalidates. *)

val knowledge : t -> Soqm_knowledge.Saturate.fact list
(** The current knowledge base: declared facts first, then the
    saturation-derived ones (empty derived set when saturation is
    off). *)

val declared_specs : t -> Soqm_semantics.Equivalence.t list

val saturation_stats : t -> Soqm_knowledge.Saturate.stats option
(** Statistics of the most recent saturation run; [None] when saturation
    is off. *)

val set_saturation : t -> Soqm_knowledge.Saturate.config option -> unit
(** Turn saturation on (with the given configuration) or off ([None]),
    and rebuild the rule set. *)

val provenance : t -> string -> string option
(** The derivation trace of a rule by (rule or specification) name —
    [None] for declared knowledge and builtin rules.  Accepts the
    ["/map"]/["/flat"] rule-name suffixes {!Soqm_semantics.Derive}
    appends to equivalence specs. *)

val add_specs : t -> Soqm_semantics.Equivalence.t list -> unit
(** Declare new knowledge: validate, append, re-saturate (if on) and
    rebuild the rules.  @raise Invalid_argument when a specification
    fails validation. *)

val retract_spec : t -> string -> bool
(** Remove a declared specification by name and rebuild; [false] when no
    declared specification has that name.  Derived knowledge cannot be
    retracted directly — it disappears when its parents do. *)

val set_checker_install : t -> (Object_store.t -> unit) -> unit
(** Method implementations for the soundness checker's candidate stores
    ({!generate} installs the document schema's internal bodies and scan
    natives; custom engines start with none). *)

val check_rules :
  ?config:Soqm_knowledge.Check.config ->
  ?install:(Object_store.t -> unit) ->
  t ->
  (Soqm_semantics.Equivalence.t * Soqm_knowledge.Check.verdict) list
(** Bounded-soundness-check every current rule (declared and derived)
    against the declared knowledge as the trusted base, in order. *)

val cache_stats : t -> int * int
(** Cumulative plan-cache [(hits, misses)] since generation.  Kept on the
    engine because per-run reports reset the store counters. *)

val cache_size : t -> int
(** Number of plans currently cached (bounded by the LRU capacity). *)

(** {1 DML}

    Updates go through the engine's store, so the attached maintenance
    observers keep indexes, implication sets, inverse links and
    statistics consistent — and the plan cache epoch-invalidates exactly
    when the optimizer's knowledge actually changed. *)

val insert : t -> cls:string -> (string * Value.t) list -> Oid.t
(** Create an object with initial property values. *)

val update : t -> Oid.t -> prop:string -> Value.t -> unit
(** Set one property ([Object_store.set_prop] semantics: typechecked,
    inverse links maintained). *)

val delete : t -> Oid.t -> unit
(** Remove an object; observers un-derive its index postings, implied-set
    memberships and backlinks from the event's final-value snapshot. *)

(** Everything one execution produced. *)
type report = {
  result : Relation.t;
  counters : Counters.t;  (** costs charged during execution only *)
  opt : Search.result option;  (** [None] for unoptimized runs *)
  elapsed_s : float;  (** wall-clock execution time, seconds *)
}

val run_naive : ?jobs:int -> Db.t -> string -> report
(** Straightforward evaluation: translate and execute the canonical plan
    with the default structural implementation — no transformations, no
    access-path selection.  [jobs] (default: the database's
    [default_jobs]) selects serial (1) or morsel-parallel execution. *)

val run_optimized : ?jobs:int -> t -> string -> report
(** Optimize, then execute the chosen plan with [jobs] workers (default:
    the engine's {!jobs}).  When the query calls a method not declared
    side-effect free, optimization is skipped and the query runs like
    {!run_naive} (the report's [opt] is [None]). *)

val run_query : ?jobs:int -> t -> string -> report
(** {!run_naive} against the engine's own store/schema (works for custom
    engines too). *)

val run_logical_reference : Db.t -> string -> Relation.t
(** Evaluate with the general-algebra reference interpreter (the
    semantics oracle used by tests). *)

val run_reference : Db.t -> string -> report
(** Like {!run_logical_reference}, but resets the store counters first
    and wraps the result in a {!report} (counters, wall-clock time), so
    experiments can put the logical evaluator's tuples-touched and probe
    counts next to the physical executor's. *)
