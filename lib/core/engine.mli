(** The end-to-end query pipeline: parse → typecheck → translate →
    optimize → execute, against a {!Db}.

    This is the "individual optimizer module generated for each schema"
    of Section 7: {!generate} derives the schema-specific rules once and
    packages them with the predefined rule set; the result optimizes and
    runs any number of queries. *)

open Soqm_vml
open Soqm_algebra
open Soqm_optimizer

type t
(** A generated optimizer bound to a database. *)

val generate :
  ?classes:Doc_knowledge.rule_class list ->
  ?extra_specs:Soqm_semantics.Equivalence.t list ->
  ?builtin_filter:(string -> bool) ->
  ?config:Search.config ->
  Db.t ->
  t
(** Generate the optimizer for the document schema: the predefined
    (builtin) rules plus the rules derived from the knowledge classes
    selected (default: all) and any extra specifications.
    [builtin_filter] keeps only the predefined transformation rules whose
    name it accepts (default: all) — used by the ablation experiments. *)

val generate_custom :
  ?specs:Soqm_semantics.Equivalence.t list ->
  ?inverse_links:bool ->
  ?config:Search.config ->
  ?has_range_index:(cls:string -> prop:string -> bool) ->
  store:Object_store.t ->
  exec_ctx:Soqm_physical.Exec.ctx ->
  has_index:(cls:string -> prop:string -> bool) ->
  unit ->
  t
(** Generate an optimizer for an arbitrary schema/store: predefined rules
    plus the rules derived from [specs] and (when [inverse_links], the
    default) from the schema's inverse-link declarations.  Statistics are
    collected from the store at generation time.  This is the paper's
    per-schema optimizer generation for user schemas; {!generate} is the
    document-schema convenience. *)

val store : t -> Object_store.t
val rule_count : t -> int
(** Number of transformation + implementation rules (for the scaling
    experiment). *)

val exec_ctx : Db.t -> Soqm_physical.Exec.ctx
(** Execution context exposing the database's value indexes. *)

val opt_ctx_of : Db.t -> Rule.opt_ctx
(** Optimizer context (schema, statistics, available indexes). *)

val logical_of_query : Db.t -> string -> Restricted.t
(** Parse, typecheck and translate a VQL string into the restricted
    algebra (no optimization). *)

val safe_to_optimize : Db.t -> Restricted.t -> (unit, string) result
(** Queries may invoke methods with side effects (hence ACCESS rather
    than SELECT, Section 2.2); reordering or memoizing such calls is
    unsound.  [Error] names the first method of the term not declared
    side-effect free. *)

val optimize : t -> Restricted.t -> Search.result

val optimize_query : t -> string -> Search.result
(** Parse, typecheck and translate against the engine's schema, then
    optimize. *)

(** Everything one execution produced. *)
type report = {
  result : Relation.t;
  counters : Counters.t;  (** costs charged during execution only *)
  opt : Search.result option;  (** [None] for unoptimized runs *)
  elapsed_s : float;  (** wall-clock execution time, seconds *)
}

val run_naive : Db.t -> string -> report
(** Straightforward evaluation: translate and execute the canonical plan
    with the default structural implementation — no transformations, no
    access-path selection. *)

val run_optimized : t -> string -> report
(** Optimize, then execute the chosen plan.  When the query calls a
    method not declared side-effect free, optimization is skipped and the
    query runs like {!run_naive} (the report's [opt] is [None]). *)

val run_query : t -> string -> report
(** {!run_naive} against the engine's own store/schema (works for custom
    engines too). *)

val run_logical_reference : Db.t -> string -> Relation.t
(** Evaluate with the general-algebra reference interpreter (the
    semantics oracle used by tests). *)

val run_reference : Db.t -> string -> report
(** Like {!run_logical_reference}, but resets the store counters first
    and wraps the result in a {!report} (counters, wall-clock time), so
    experiments can put the logical evaluator's tuples-touched and probe
    counts next to the physical executor's. *)
