(** The paper's running example schema (Section 2.1): classes [Document],
    [Section] and [Paragraph], plus the [largeParagraphs]/[wordCount]
    extension used by the implication rules of Section 4.2.

    The inverse links [Document.sections ↔ Section.document] and
    [Section.paragraphs ↔ Paragraph.section] are declared in the schema —
    they are the source of the equivalent-condition knowledge E3/E4. *)

open Soqm_vml

val schema : Schema.t

val make :
  ?cost_contains_string:float ->
  ?cost_retrieve_by_string:float ->
  ?cost_select_by_index:float ->
  ?cost_word_count:float ->
  ?selectivity_contains_string:float ->
  ?pure_word_count:bool ->
  unit ->
  Schema.t
(** The same schema with overridden method cost/selectivity declarations;
    used by the expensive-predicate experiments.  [schema] is
    [make ()]. *)

val install_internal_methods : Object_store.t -> unit
(** Register the bodies of the internally-encoded methods:
    - [Paragraph.document() { RETURN section.document; }]
    - [Paragraph.sameDocument(p) { RETURN SELF→document() == p→document(); }]
    - [Document.paragraphs()] (all paragraphs of the document's sections)

    External methods ([contains_string], [retrieve_by_string],
    [select_by_index], [wordCount]) are registered by {!Db}, which owns
    the indexes they probe. *)

val install_scan_methods : Object_store.t -> unit
(** Register index-free scan implementations of the four external
    methods, semantically equal to the index-backed natives {!Db}
    registers.  Used on the knowledge checker's candidate stores, which
    have no indexes. *)

(** Declared cost weights of the example's methods, exposed so benchmarks
    and documentation can refer to them. *)

val cost_contains_string : float
val cost_retrieve_by_string : float
val cost_select_by_index : float
val cost_word_count : float
val selectivity_contains_string : float
val selectivity_select_by_index : float
