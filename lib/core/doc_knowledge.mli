(** The schema-specific knowledge of the running example — the
    equivalences E1–E5 of Section 2.3 plus the [largeParagraphs]
    implication of Section 4.2, grouped into classes so experiments can
    ablate them individually. *)

open Soqm_semantics

(** Knowledge classes, for ablation. *)
type rule_class =
  | Path_methods  (** E1 ([document()]) and [paragraphs()] *)
  | Index_equivalences  (** E2: [title == s ⇔ IS-IN select_by_index(s)] *)
  | Inverse_links  (** E3/E4, derived from the schema's inverse links *)
  | Query_method_equivs  (** E5: [contains_string ≡ retrieve_by_string] *)
  | Implications  (** [wordCount() > 500 ⇒ IS-IN largeParagraphs] *)

val all_classes : rule_class list

val specs : ?classes:rule_class list -> unit -> Equivalence.t list
(** The specifications of the selected classes (default: all). *)

val word_count_implication : Equivalence.t
(** The [Implications]-class spec on its own:
    [∀p IN Paragraph: p→wordCount() > 500 ⇒ p IS-IN
    p→document().largeParagraphs].  Exported separately because the
    maintenance subsystem compiles the implied set's maintainer from it
    (the same spec drives both the optimizer rule and the DML upkeep). *)

val class_name : rule_class -> string
