open Soqm_vml

(* Cost weights, in object-fetch units.  External operations dominate:
   [contains_string] stands for a per-paragraph IR scan, the two
   class-level access paths are single probes of prebuilt indexes. *)
let cost_contains_string = 10.0
let cost_retrieve_by_string = 25.0
let cost_select_by_index = 5.0
let cost_word_count = 8.0
let selectivity_contains_string = 0.05
let selectivity_select_by_index = 0.01

let make ?(cost_contains_string = cost_contains_string)
    ?(cost_retrieve_by_string = cost_retrieve_by_string)
    ?(cost_select_by_index = cost_select_by_index)
    ?(cost_word_count = cost_word_count)
    ?(selectivity_contains_string = selectivity_contains_string)
    ?(pure_word_count = true) () =
  let open Schema in
  let document =
    cls "Document"
      ~own_methods:
        [
          meth "select_by_index"
            [ ("t", Vtype.TString) ]
            (Vtype.TSet (Vtype.TObj "Document"))
            ~kind:External ~cost:cost_select_by_index
            ~selectivity:selectivity_select_by_index;
        ]
      ~properties:
        [
          prop "title" Vtype.TString;
          prop "author" Vtype.TString;
          prop "sections"
            (Vtype.TSet (Vtype.TObj "Section"))
            ~inverse:("Section", "document");
          prop "largeParagraphs" (Vtype.TSet (Vtype.TObj "Paragraph"));
        ]
      ~inst_methods:
        [ meth "paragraphs" [] (Vtype.TSet (Vtype.TObj "Paragraph")) ~cost:1.0 ]
  in
  let section =
    cls "Section"
      ~properties:
        [
          prop "number" Vtype.TInt;
          prop "title" Vtype.TString;
          prop "document" (Vtype.TObj "Document") ~inverse:("Document", "sections");
          prop "paragraphs"
            (Vtype.TSet (Vtype.TObj "Paragraph"))
            ~inverse:("Paragraph", "section");
        ]
  in
  let paragraph =
    cls "Paragraph"
      ~own_methods:
        [
          meth "retrieve_by_string"
            [ ("s", Vtype.TString) ]
            (Vtype.TSet (Vtype.TObj "Paragraph"))
            ~kind:External ~cost:cost_retrieve_by_string
            ~selectivity:selectivity_contains_string;
        ]
      ~properties:
        [
          prop "number" Vtype.TInt;
          prop "section" (Vtype.TObj "Section") ~inverse:("Section", "paragraphs");
          prop "content" Vtype.TString;
          prop "word_count" Vtype.TInt;
        ]
      ~inst_methods:
        [
          meth "document" [] (Vtype.TObj "Document") ~cost:1.0;
          meth "contains_string"
            [ ("s", Vtype.TString) ]
            Vtype.TBool ~kind:External ~cost:cost_contains_string
            ~selectivity:selectivity_contains_string;
          meth "sameDocument"
            [ ("p", Vtype.TObj "Paragraph") ]
            Vtype.TBool ~cost:2.0 ~selectivity:0.01;
          meth "wordCount" [] Vtype.TInt ~kind:External ~cost:cost_word_count
            ~side_effect_free:pure_word_count;
        ]
  in
  Schema.make [ document; section; paragraph ]

let schema = make ()

let install_internal_methods store =
  let open Expr in
  (* document() { RETURN section.document; } *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"document"
    (Object_store.Body (Prop (Prop (Self, "section"), "document")));
  (* sameDocument(p) { RETURN (SELF->document() == p->document()); } *)
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"sameDocument"
    (Object_store.Body
       (Binop (Eq, Call (Self, "document", []), Call (Param "p", "document", []))));
  (* paragraphs() — union of the paragraphs of all of the document's
     sections (set-lifted property access). *)
  Object_store.register_inst_method store ~cls:"Document" ~meth:"paragraphs"
    (Object_store.Body (Prop (Prop (Self, "sections"), "paragraphs")))

(* Index-free variants of the external methods, with the same semantics
   as the index-backed natives {!Db} registers.  The knowledge checker's
   candidate stores have no indexes, so they get these scans. *)
let install_scan_methods store =
  let contains content s =
    let words = Soqm_ir.Tokenizer.vocabulary s in
    words <> [] && List.for_all (Soqm_ir.Tokenizer.contains_word content) words
  in
  Object_store.register_own_method store ~cls:"Document" ~meth:"select_by_index"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ (Value.Str _ as title) ] ->
           let oids =
             List.filter
               (fun oid ->
                 Value.equal (Object_store.peek_prop store oid "title") title)
               (Object_store.extent store "Document")
           in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "select_by_index expects one string")));
  Object_store.register_own_method store ~cls:"Paragraph"
    ~meth:"retrieve_by_string"
    (Object_store.Native
       (fun store _recv args ->
         match args with
         | [ Value.Str s ] ->
           let oids =
             List.filter
               (fun oid ->
                 match Object_store.peek_prop store oid "content" with
                 | Value.Str content -> contains content s
                 | _ -> false)
               (Object_store.extent store "Paragraph")
           in
           Value.set (List.map (fun o -> Value.Obj o) oids)
         | _ -> raise (Runtime.Error "retrieve_by_string expects one string")));
  Object_store.register_inst_method store ~cls:"Paragraph"
    ~meth:"contains_string"
    (Object_store.Native
       (fun store recv args ->
         match (recv, args) with
         | Value.Obj oid, [ Value.Str s ] -> (
           match Object_store.peek_prop store oid "content" with
           | Value.Str content -> Value.Bool (contains content s)
           | _ -> Value.Bool false)
         | _ -> raise (Runtime.Error "contains_string expects one string")));
  Object_store.register_inst_method store ~cls:"Paragraph" ~meth:"wordCount"
    (Object_store.Native
       (fun store recv args ->
         match (recv, args) with
         | Value.Obj oid, [] -> Object_store.peek_prop store oid "word_count"
         | _ -> raise (Runtime.Error "wordCount expects no arguments")))
