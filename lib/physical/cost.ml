open Soqm_vml
open Soqm_algebra
open Soqm_storage

type estimate = { card : float; cost : float }

(* What is known about the value a reference holds; drives selectivity
   and fanout estimation. *)
type prov =
  | PObj of string  (** an instance of the class *)
  | PSet of string option * float  (** a set (of instances), estimated size *)
  | PScalarProp of string * string  (** scalar property value: cls, prop *)
  | PBoolMethod of string * string  (** result of a boolean method: cls, meth *)
  | POther

type info = {
  e : estimate;
  prov : (string * prov) list;
  consts : string list;  (** tuple-independent references *)
}

let tuple_cost = 0.01
let fetch_cost = 1.2 (* object fetch + property read *)
let probe_cost = 1.0

(* The batch executor hands results downstream a block at a time; each
   operator pays a per-block dispatch overhead on top of the per-row
   work.  At [Exec.block_size] rows per block this term is tiny per
   tuple, but it makes the model prefer plans that keep blocks full. *)
let block_cost = 0.5

let block_dispatch card =
  Float.ceil (Float.max 0.0 card /. float_of_int Exec.block_size) *. block_cost

let is_const_operand consts = function
  | Restricted.OConst _ -> true
  | Restricted.ORef r -> List.mem r consts
  | Restricted.OParam _ -> false

let prop_info schema ~cls ~prop =
  Schema.property_type schema ~cls ~prop

(* Provenance of [recv.prop] given the receiver's provenance. *)
let access_prov stats recv_prov prop =
  let schema = Statistics.schema stats in
  match recv_prov with
  | PObj cls -> (
    match prop_info schema ~cls ~prop with
    | Some (Vtype.TObj c') -> PObj c'
    | Some (Vtype.TSet (Vtype.TObj c')) ->
      PSet (Some c', Statistics.fanout stats ~cls ~prop)
    | Some (Vtype.TSet _) -> PSet (None, Statistics.fanout stats ~cls ~prop)
    | Some _ -> PScalarProp (cls, prop)
    | None -> POther)
  | PSet (Some cls, k) -> (
    match prop_info schema ~cls ~prop with
    | Some (Vtype.TObj c') -> PSet (Some c', k)
    | Some (Vtype.TSet (Vtype.TObj c')) ->
      PSet (Some c', k *. Statistics.fanout stats ~cls ~prop)
    | Some (Vtype.TSet _) -> PSet (None, k *. Statistics.fanout stats ~cls ~prop)
    | Some _ -> PSet (None, k)
    | None -> POther)
  | _ -> POther

(* Provenance of the result of method [m] on a receiver of class [cls]. *)
let method_prov stats ~own ~cls m =
  let schema = Statistics.schema stats in
  let msig =
    if own then Schema.own_method schema ~cls ~meth:m
    else Schema.inst_method schema ~cls ~meth:m
  in
  match msig with
  | Some { Schema.returns = Vtype.TBool; _ } -> PBoolMethod (cls, m)
  | Some { Schema.returns = Vtype.TObj c'; _ } -> PObj c'
  | Some { Schema.returns = Vtype.TSet (Vtype.TObj c'); _ } ->
    PSet (Some c', Statistics.method_result_card stats ~cls ~meth:m)
  | Some { Schema.returns = Vtype.TSet _; _ } ->
    PSet (None, Statistics.method_result_card stats ~cls ~meth:m)
  | Some _ | None -> POther

let operand_prov prov_env = function
  | Restricted.ORef r -> Option.value ~default:POther (List.assoc_opt r prov_env)
  | Restricted.OConst (Value.Set vs) -> PSet (None, float_of_int (List.length vs))
  | Restricted.OConst _ | Restricted.OParam _ -> POther

(* Selectivity of [x θ y]. *)
let cmp_selectivity stats prov_env c x y =
  match c, operand_prov prov_env x, y with
  | Restricted.CEq, PBoolMethod (cls, m), Restricted.OConst (Value.Bool true) ->
    Statistics.method_selectivity stats ~cls ~meth:m
  | Restricted.CEq, PBoolMethod (cls, m), Restricted.OConst (Value.Bool false) ->
    1.0 -. Statistics.method_selectivity stats ~cls ~meth:m
  | Restricted.CEq, PScalarProp (cls, p), Restricted.OConst _ ->
    Statistics.eq_selectivity stats ~cls ~prop:p
  | Restricted.CEq, _, _ -> 0.1
  | Restricted.CNeq, _, _ -> 0.9
  | (Restricted.CLt | Restricted.CLe | Restricted.CGt | Restricted.CGe), _, _ ->
    0.33
  | Restricted.CIsIn, lhs, _ -> (
    match lhs, operand_prov prov_env y with
    | PObj cls, PSet (_, k) ->
      Float.min 1.0 (k /. Float.max 1.0 (Statistics.cardinality stats cls))
    | _, PSet (_, k) -> Float.min 1.0 (k /. 100.0)
    | _ -> 0.1)
  | Restricted.CIsSubset, _, _ -> 0.1

let method_sig stats ~own ~cls m =
  let schema = Statistics.schema stats in
  if own then Schema.own_method schema ~cls ~meth:m
  else Schema.inst_method schema ~cls ~meth:m

let merge_infos i1 i2 e =
  {
    e;
    prov = i1.prov @ List.filter (fun (r, _) -> not (List.mem_assoc r i1.prov)) i2.prov;
    consts = List.sort_uniq String.compare (i1.consts @ i2.consts);
  }

let rec analyze stats (plan : Plan.t) : info =
  match plan with
  | Plan.Unit -> { e = { card = 1.0; cost = 0.0 }; prov = []; consts = [] }
  | Plan.FullScan (a, cls) ->
    let n = Statistics.cardinality stats cls in
    { e = { card = n; cost = (n *. 1.0) +. block_dispatch n };
      prov = [ (a, PObj cls) ];
      consts = [] }
  | Plan.IndexScan (a, cls, prop, _) ->
    let n = Statistics.cardinality stats cls in
    let card = Float.max 1.0 (n *. Statistics.eq_selectivity stats ~cls ~prop) in
    {
      e = { card; cost = probe_cost +. (card *. 0.1) +. block_dispatch card };
      prov = [ (a, PObj cls) ];
      consts = [];
    }
  | Plan.RangeScan (a, cls, _, lo, hi) ->
    let n = Statistics.cardinality stats cls in
    let sel =
      match lo, hi with
      | Soqm_storage.Sorted_index.Unbounded, Soqm_storage.Sorted_index.Unbounded
        ->
        1.0
      | Soqm_storage.Sorted_index.Unbounded, _
      | _, Soqm_storage.Sorted_index.Unbounded ->
        0.33
      | _ -> 0.15
    in
    let card = Float.max 1.0 (n *. sel) in
    {
      e = { card; cost = probe_cost +. (card *. 0.1) +. block_dispatch card };
      prov = [ (a, PObj cls) ];
      consts = [];
    }
  | Plan.MethodScan (a, cls, m, _) ->
    let card = Statistics.method_result_card stats ~cls ~meth:m in
    let mcost = Statistics.method_cost stats ~cls ~meth:m in
    let elem_prov =
      match method_prov stats ~own:true ~cls m with
      | PSet (Some c', _) -> PObj c'
      | _ -> POther
    in
    {
      e = { card; cost = mcost +. (card *. tuple_cost) +. block_dispatch card };
      prov = [ (a, elem_prov) ];
      consts = [];
    }
  | Plan.Filter (c, x, y, input) ->
    let i = analyze stats input in
    let sel = cmp_selectivity stats i.prov c x y in
    {
      i with
      e =
        {
          card = i.e.card *. sel;
          cost =
            i.e.cost +. (i.e.card *. tuple_cost)
            +. block_dispatch (i.e.card *. sel);
        };
    }
  | Plan.NestedLoop (pred, p1, p2) ->
    let i1 = analyze stats p1 and i2 = analyze stats p2 in
    let raw = i1.e.card *. i2.e.card in
    let sel = match pred with None -> 1.0 | Some (Restricted.CEq, _, _) -> 1.0 /. Float.max 1.0 (Float.max i1.e.card i2.e.card) | Some _ -> 0.33 in
    merge_infos i1 i2
      {
        card = raw *. sel;
        cost =
          i1.e.cost +. i2.e.cost +. (raw *. tuple_cost)
          +. block_dispatch (raw *. sel);
      }
  | Plan.HashJoin (_, _, p1, p2) ->
    let i1 = analyze stats p1 and i2 = analyze stats p2 in
    let card = Float.min i1.e.card i2.e.card in
    merge_infos i1 i2
      {
        card;
        cost =
          i1.e.cost +. i2.e.cost
          +. ((i1.e.card +. i2.e.card) *. 0.02)
          +. block_dispatch card;
      }
  | Plan.NaturalJoin (p1, p2) ->
    let i1 = analyze stats p1 and i2 = analyze stats p2 in
    let card = Float.min i1.e.card i2.e.card in
    merge_infos i1 i2
      {
        card;
        cost =
          i1.e.cost +. i2.e.cost
          +. ((i1.e.card +. i2.e.card) *. 0.02)
          +. block_dispatch card;
      }
  | Plan.Union (p1, p2) ->
    let i1 = analyze stats p1 and i2 = analyze stats p2 in
    merge_infos i1 i2
      {
        card = i1.e.card +. i2.e.card;
        cost =
          i1.e.cost +. i2.e.cost +. block_dispatch (i1.e.card +. i2.e.card);
      }
  | Plan.Diff (p1, p2) ->
    let i1 = analyze stats p1 and i2 = analyze stats p2 in
    merge_infos i1 i2
      {
        card = i1.e.card;
        cost = i1.e.cost +. i2.e.cost +. block_dispatch i1.e.card;
      }
  | Plan.MapProp (a, p, a1, input) | Plan.FlatProp (a, p, a1, input) ->
    let i = analyze stats input in
    let recv_prov = Option.value ~default:POther (List.assoc_opt a1 i.prov) in
    let result_prov = access_prov stats recv_prov p in
    let const = List.mem a1 i.consts in
    (* the executor memoizes per receiver value, so evaluations are
       bounded by the number of distinct receivers *)
    let distinct_bound =
      match recv_prov with
      | PObj cls -> Statistics.cardinality stats cls
      | _ -> infinity
    in
    let evals = if const then 1.0 else Float.min i.e.card distinct_bound in
    let per_eval =
      match recv_prov with PSet (_, k) -> k *. fetch_cost | _ -> fetch_cost
    in
    let is_flat = match plan with Plan.FlatProp _ -> true | _ -> false in
    (* [access_prov] already folds the receiver-set size into the
       estimated set size, so unnesting multiplies by it directly. *)
    let card, prov_a =
      if is_flat then
        match result_prov with
        | PSet (Some c', f) -> (i.e.card *. Float.max 1.0 f, PObj c')
        | PSet (None, f) -> (i.e.card *. Float.max 1.0 f, POther)
        | _ -> (i.e.card, POther)
      else (i.e.card, result_prov)
    in
    {
      e =
        {
          card;
          cost =
            i.e.cost +. (evals *. per_eval) +. (card *. tuple_cost)
            +. block_dispatch card;
        };
      prov = (a, prov_a) :: i.prov;
      consts = (if const then a :: i.consts else i.consts);
    }
  | Plan.MapMeth (a, m, recv, args, input) | Plan.FlatMeth (a, m, recv, args, input) ->
    let i = analyze stats input in
    let own, cls_opt, recv_const =
      match recv with
      | Restricted.RClass c -> (true, Some c, true)
      | Restricted.RRef r -> (
        ( false,
          (match List.assoc_opt r i.prov with
          | Some (PObj c) -> Some c
          | Some (PSet (c, _)) -> c
          | _ -> None),
          List.mem r i.consts ))
    in
    let const =
      recv_const && List.for_all (is_const_operand i.consts) args
    in
    let mcost, result_prov =
      match cls_opt with
      | Some cls ->
        ( (match method_sig stats ~own ~cls m with
          | Some s -> s.Schema.cost_per_call
          | None -> 1.0),
          method_prov stats ~own ~cls m )
      | None -> (1.0, POther)
    in
    (* memoized per (receiver, args) value: with constant arguments,
       distinct instance receivers bound the evaluation count *)
    let distinct_bound =
      match recv, cls_opt with
      | Restricted.RRef _, Some cls
        when List.for_all (is_const_operand i.consts) args ->
        Statistics.cardinality stats cls
      | _ -> infinity
    in
    let evals = if const then 1.0 else Float.min i.e.card distinct_bound in
    let is_flat = match plan with Plan.FlatMeth _ -> true | _ -> false in
    let card, prov_a =
      if is_flat then
        match result_prov with
        | PSet (Some c', k) -> (i.e.card *. Float.max 1.0 k, PObj c')
        | PSet (None, k) -> (i.e.card *. Float.max 1.0 k, POther)
        | _ -> (i.e.card, POther)
      else (i.e.card, result_prov)
    in
    {
      e =
        {
          card;
          cost =
            i.e.cost +. (evals *. mcost) +. (card *. tuple_cost)
            +. block_dispatch card;
        };
      prov = (a, prov_a) :: i.prov;
      consts = (if const then a :: i.consts else i.consts);
    }
  | Plan.MapOp (a, op, xs, input) ->
    let i = analyze stats input in
    let const = List.for_all (is_const_operand i.consts) xs in
    (* identity preserves its operand's provenance; other operators
       produce scalars we know nothing about *)
    let prov_a =
      match op, xs with
      | Restricted.OpIdent, [ x ] -> operand_prov i.prov x
      | _ -> POther
    in
    {
      e =
        {
          card = i.e.card;
          cost =
            i.e.cost +. (i.e.card *. tuple_cost) +. block_dispatch i.e.card;
        };
      prov = (a, prov_a) :: i.prov;
      consts = (if const then a :: i.consts else i.consts);
    }
  | Plan.FlatOp (a, _, xs, input) ->
    let i = analyze stats input in
    let k =
      match xs with
      | [ x ] -> (
        match operand_prov i.prov x with PSet (_, k) -> Float.max 1.0 k | _ -> 5.0)
      | _ -> 5.0
    in
    let elem_prov =
      match xs with
      | [ x ] -> (
        match operand_prov i.prov x with
        | PSet (Some c', _) -> PObj c'
        | _ -> POther)
      | _ -> POther
    in
    {
      e =
        {
          card = i.e.card *. k;
          cost =
            i.e.cost +. (i.e.card *. k *. tuple_cost)
            +. block_dispatch (i.e.card *. k);
        };
      prov = (a, elem_prov) :: i.prov;
      consts = i.consts;
    }
  | Plan.Project (rs, input) ->
    let i = analyze stats input in
    {
      e =
        {
          card = i.e.card;
          cost =
            i.e.cost +. (i.e.card *. tuple_cost) +. block_dispatch i.e.card;
        };
      prov = List.filter (fun (r, _) -> List.mem r rs) i.prov;
      consts = List.filter (fun r -> List.mem r rs) i.consts;
    }

let estimate stats plan = (analyze stats plan).e
let cost stats plan = (estimate stats plan).cost
