(* Worker-domain pool: lazily spawned helpers parked on a condition
   variable, a generation-free claim protocol (worker indices for the
   current task are handed out under the pool mutex), and a joining
   caller that doubles as worker 0. *)

let total_spawned_counter = Atomic.make 0
let total_spawned () = Atomic.get total_spawned_counter

type t = {
  max_helpers : int;
  m : Mutex.t;
  work : Condition.t;  (* helpers wait here between tasks *)
  finished : Condition.t;  (* the caller waits here for the join *)
  mutable task : (int -> unit) option;
  mutable next_index : int;  (* next worker index to hand out *)
  mutable hi : int;  (* helper indices for this task are [1 .. hi] *)
  mutable unfinished : int;  (* indices not yet completed *)
  mutable failure : exn option;  (* first worker exception of this task *)
  mutable domains : unit Domain.t list;
  mutable spawned : int;
  mutable stop : bool;
  mutable busy : bool;  (* a task is in flight (re-entrancy guard) *)
}

let create ?(max_helpers = 126) () =
  {
    max_helpers = max 0 max_helpers;
    m = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    task = None;
    next_index = 0;
    hi = 0;
    unfinished = 0;
    failure = None;
    domains = [];
    spawned = 0;
    stop = false;
    busy = false;
  }

let helpers t =
  Mutex.lock t.m;
  let n = t.spawned in
  Mutex.unlock t.m;
  n

(* Helper body: claim an index of the current task, run it, account its
   completion, repeat; park when no claimable index exists.  A helper
   that finishes early may legally claim a second index of the same
   task — with morsel-cursor tasks the extra claim just finds the
   cursor exhausted. *)
let helper_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stop then Mutex.unlock t.m
    else
      match t.task with
      | Some f when t.next_index <= t.hi ->
        let i = t.next_index in
        t.next_index <- i + 1;
        Mutex.unlock t.m;
        (try f i
         with e ->
           Mutex.lock t.m;
           if t.failure = None then t.failure <- Some e;
           Mutex.unlock t.m);
        Mutex.lock t.m;
        t.unfinished <- t.unfinished - 1;
        if t.unfinished = 0 then Condition.broadcast t.finished;
        next ()
      | _ ->
        Condition.wait t.work t.m;
        next ()
  in
  next ()

let spawn_up_to t wanted =
  (* called with [t.m] held *)
  while t.spawned < wanted && t.spawned < t.max_helpers do
    t.spawned <- t.spawned + 1;
    Atomic.incr total_spawned_counter;
    t.domains <- Domain.spawn (fun () -> helper_loop t) :: t.domains
  done

let run t ~jobs f =
  if jobs <= 1 then f 0
  else begin
    Mutex.lock t.m;
    if t.busy || t.stop then begin
      (* re-entrant (or shutting-down) use: the pool is not a scheduler,
         degrade to inline sequential execution of every index *)
      Mutex.unlock t.m;
      for i = 0 to jobs - 1 do
        f i
      done
    end
    else begin
      t.busy <- true;
      spawn_up_to t (jobs - 1);
      let k = min (jobs - 1) t.spawned in
      t.task <- Some f;
      t.next_index <- 1;
      t.hi <- k;
      t.unfinished <- k;
      t.failure <- None;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      (* the caller is worker 0 *)
      let caller_failure = (try f 0; None with e -> Some e) in
      Mutex.lock t.m;
      while t.unfinished > 0 do
        Condition.wait t.finished t.m
      done;
      t.task <- None;
      let failure =
        match caller_failure with Some _ -> caller_failure | None -> t.failure
      in
      t.failure <- None;
      t.busy <- false;
      Mutex.unlock t.m;
      match failure with Some e -> raise e | None -> ()
    end
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  let ds = t.domains in
  t.domains <- [];
  t.spawned <- 0;
  Mutex.unlock t.m;
  List.iter Domain.join ds;
  Mutex.lock t.m;
  t.stop <- false;
  Mutex.unlock t.m

(* The process-wide pool.  Creation is racy-safe in practice (executors
   ask for it from the main domain), but guard with a mutex anyway. *)
let global_pool = ref None
let global_m = Mutex.create ()

let global () =
  Mutex.lock global_m;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create () in
      global_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock global_m;
  p
