open Soqm_vml
open Soqm_algebra

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type ctx = {
  store : Object_store.t;
  probe_index : cls:string -> prop:string -> Value.t -> Oid.t list option;
  probe_range :
    cls:string ->
    prop:string ->
    lo:Soqm_storage.Sorted_index.bound ->
    hi:Soqm_storage.Sorted_index.bound ->
    Oid.t list option;
  scan_cost : cls:string -> (int * int) option;
}

let basic_ctx store =
  {
    store;
    probe_index = (fun ~cls:_ ~prop:_ _ -> None);
    probe_range = (fun ~cls:_ ~prop:_ ~lo:_ ~hi:_ -> None);
    scan_cost = (fun ~cls:_ -> None);
  }

type iter = { next : unit -> Relation.tuple option; close : unit -> unit }

let counters ctx = Object_store.counters ctx.store

let eval_cmp c x y =
  try Runtime.eval_binop (Restricted.cmp_to_binop c) x y
  with Runtime.Error msg -> error "%s" msg

let eval_op op (vs : Value.t list) =
  match op, vs with
  | Restricted.OpBin b, [ x; y ] -> (
    try Runtime.eval_binop b x y with Runtime.Error msg -> error "%s" msg)
  | Restricted.OpNot, [ Value.Bool b ] -> Value.Bool (not b)
  | Restricted.OpNot, [ v ] -> error "NOT on non-boolean %s" (Value.to_string v)
  | Restricted.OpIdent, [ v ] -> v
  | Restricted.OpTuple labels, vs when List.length labels = List.length vs ->
    Value.tuple (List.map2 (fun l v -> (l, v)) labels vs)
  | Restricted.OpSet, vs -> Value.set vs
  | _ -> error "operator arity mismatch in physical plan"

let memoized1 f =
  let memo = Hashtbl.create 64 in
  fun key ->
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v = f key in
      Hashtbl.replace memo key v;
      v

(* ------------------------------------------------------------------ *)
(* Interpreted path: one canonical tuple per next(), names resolved    *)
(* with assoc lookups on every row.  Kept as the reference executor    *)
(* the batch path is property-tested against.                          *)
(* ------------------------------------------------------------------ *)

module Interpreted = struct
  let operand_value tuple = function
    | Restricted.ORef r -> (
      match Relation.Tuple.find_opt r tuple with
      | Some v -> v
      | None -> error "unbound reference %S in physical plan" r)
    | Restricted.OConst v -> v
    | Restricted.OParam p -> error "unresolved specification parameter %S" p

  let receiver_value tuple = function
    | Restricted.RRef r -> operand_value tuple (Restricted.ORef r)
    | Restricted.RClass c -> Value.Cls c

  let of_list tuples =
    let remaining = ref tuples in
    {
      next =
        (fun () ->
          match !remaining with
          | [] -> None
          | t :: rest ->
            remaining := rest;
            Some t);
      close = (fun () -> remaining := []);
    }

  let drain iter =
    let rec go acc =
      match iter.next () with None -> List.rev acc | Some t -> go (t :: acc)
    in
    let tuples = go [] in
    iter.close ();
    tuples

  (* One output tuple per input tuple, extended with [a := f tuple]. *)
  let extend ctx a f input =
    {
      next =
        (fun () ->
          match input.next () with
          | None -> None
          | Some tuple ->
            Counters.charge_tuple (counters ctx);
            Some (Relation.Tuple.insert (a, f tuple) tuple));
      close = input.close;
    }

  (* One output tuple per member of the set [f tuple]. *)
  let unnest ctx a f input =
    let pending = ref [] in
    let rec next () =
      match !pending with
      | t :: rest ->
        pending := rest;
        Counters.charge_tuple (counters ctx);
        Some t
      | [] -> (
        match input.next () with
        | None -> None
        | Some tuple ->
          (match f tuple with
          | Value.Set members ->
            pending :=
              List.map (fun v -> Relation.Tuple.insert (a, v) tuple) members
          | Value.Null -> pending := []
          | v -> error "flat operator produced non-set %s" (Value.to_string v));
          next ())
    in
    { next; close = input.close }

  let rec open_plan ctx (plan : Plan.t) : iter =
    match plan with
    | Plan.Unit -> of_list [ [] ]
    | Plan.FullScan (a, cls) ->
      let oids =
        try Object_store.extent ctx.store cls
        with Invalid_argument msg -> error "%s" msg
      in
      let tuples =
        List.map
          (fun o ->
            Counters.charge_object_fetch (counters ctx);
            [ (a, Value.Obj o) ])
          oids
      in
      of_list tuples
    | Plan.IndexScan (a, cls, prop, key) -> (
      match ctx.probe_index ~cls ~prop key with
      | Some oids -> of_list (List.map (fun o -> [ (a, Value.Obj o) ]) oids)
      | None -> error "no index on %s.%s" cls prop)
    | Plan.RangeScan (a, cls, prop, lo, hi) -> (
      match ctx.probe_range ~cls ~prop ~lo ~hi with
      | Some oids -> of_list (List.map (fun o -> [ (a, Value.Obj o) ]) oids)
      | None -> error "no ordered index on %s.%s" cls prop)
    | Plan.MethodScan (a, cls, m, args) -> (
      match
        try Runtime.invoke ctx.store (Value.Cls cls) m args
        with Runtime.Error msg -> error "%s" msg
      with
      | Value.Set members -> of_list (List.map (fun v -> [ (a, v) ]) members)
      | v ->
        error "method scan %s->%s produced non-set %s" cls m (Value.to_string v))
    | Plan.Filter (c, x, y, input) ->
      let input = open_plan ctx input in
      let rec next () =
        match input.next () with
        | None -> None
        | Some tuple ->
          if
            Value.truthy
              (eval_cmp c (operand_value tuple x) (operand_value tuple y))
          then (
            Counters.charge_tuple (counters ctx);
            Some tuple)
          else next ()
      in
      { next; close = input.close }
    | Plan.NestedLoop (pred, left, right) ->
      let left = open_plan ctx left in
      let right_tuples = lazy (drain (open_plan ctx right)) in
      let current = ref None in
      let remaining = ref [] in
      let rec next () =
        match !remaining with
        | rt :: rest -> (
          remaining := rest;
          match !current with
          | None -> next ()
          | Some lt ->
            let merged = Relation.Tuple.merge_sorted lt rt in
            let keep =
              match pred with
              | None -> true
              | Some (c, a1, a2) ->
                Value.truthy
                  (eval_cmp c
                     (operand_value merged (Restricted.ORef a1))
                     (operand_value merged (Restricted.ORef a2)))
            in
            if keep then (
              Counters.charge_tuple (counters ctx);
              Some merged)
            else next ())
        | [] -> (
          match left.next () with
          | None -> None
          | Some lt ->
            current := Some lt;
            remaining := Lazy.force right_tuples;
            next ())
      in
      { next; close = left.close }
    | Plan.HashJoin (a1, a2, left, right) ->
      (* equi-join: Null keys never match (DESIGN.md §7), so they are
         skipped on both the build and the probe side — mirroring the
         logical evaluator's hash equi-join fast path. *)
      let left = open_plan ctx left in
      let table =
        lazy
          (let tbl = Hashtbl.create 256 in
           List.iter
             (fun rt ->
               match operand_value rt (Restricted.ORef a2) with
               | Value.Null -> ()
               | key -> Hashtbl.add tbl key rt)
             (drain (open_plan ctx right));
           tbl)
      in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | t :: rest ->
          pending := rest;
          Counters.charge_tuple (counters ctx);
          Some t
        | [] -> (
          match left.next () with
          | None -> None
          | Some lt ->
            (match operand_value lt (Restricted.ORef a1) with
            | Value.Null -> pending := []
            | key ->
              pending :=
                List.map
                  (fun rt -> Relation.Tuple.merge_sorted lt rt)
                  (Hashtbl.find_all (Lazy.force table) key));
            next ())
      in
      { next; close = left.close }
    | Plan.NaturalJoin (left_plan, right_plan) ->
      let left = open_plan ctx left_plan in
      let shared =
        List.filter
          (fun r -> List.mem r (Plan.refs right_plan))
          (Plan.refs left_plan)
      in
      let table =
        lazy
          (let tbl = Relation.KeyTbl.create 256 in
           List.iter
             (fun rt ->
               let key = Relation.Tuple.key shared rt in
               match Relation.KeyTbl.find_opt tbl key with
               | Some prev -> Relation.KeyTbl.replace tbl key (rt :: prev)
               | None -> Relation.KeyTbl.add tbl key [ rt ])
             (drain (open_plan ctx right_plan));
           tbl)
      in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | t :: rest ->
          pending := rest;
          Counters.charge_tuple (counters ctx);
          Some t
        | [] -> (
          match left.next () with
          | None -> None
          | Some lt ->
            let key = Relation.Tuple.key shared lt in
            let matches =
              Option.value ~default:[]
                (Relation.KeyTbl.find_opt (Lazy.force table) key)
            in
            pending :=
              List.map (fun rt -> Relation.Tuple.merge_sorted lt rt) matches;
            next ())
      in
      { next; close = left.close }
    | Plan.Union (left, right) ->
      let left = open_plan ctx left in
      let right = lazy (open_plan ctx right) in
      let on_right = ref false in
      let rec next () =
        if !on_right then (Lazy.force right).next ()
        else
          match left.next () with
          | Some t -> Some t
          | None ->
            on_right := true;
            next ()
      in
      {
        next;
        close =
          (fun () ->
            left.close ();
            if Lazy.is_val right then (Lazy.force right).close ());
      }
    | Plan.Diff (left, right) ->
      let left = open_plan ctx left in
      let excluded =
        lazy
          (let tbl = Relation.Tbl.create 256 in
           List.iter
             (fun t -> Relation.Tbl.replace tbl t ())
             (drain (open_plan ctx right));
           tbl)
      in
      let rec next () =
        match left.next () with
        | None -> None
        | Some t ->
          if Relation.Tbl.mem (Lazy.force excluded) t then next () else Some t
      in
      { next; close = left.close }
    | Plan.MapProp (a, p, a1, input) ->
      let access =
        memoized1 (fun recv ->
            try Runtime.access ctx.store recv p
            with Runtime.Error msg -> error "%s" msg)
      in
      extend ctx a
        (fun tuple -> access (operand_value tuple (Restricted.ORef a1)))
        (open_plan ctx input)
    | Plan.MapMeth (a, m, recv, args, input) ->
      let call =
        memoized1 (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      extend ctx a
        (fun tuple ->
          call (receiver_value tuple recv, List.map (operand_value tuple) args))
        (open_plan ctx input)
    | Plan.FlatProp (a, p, a1, input) ->
      let access =
        memoized1 (fun recv ->
            try Runtime.access ctx.store recv p
            with Runtime.Error msg -> error "%s" msg)
      in
      unnest ctx a
        (fun tuple -> access (operand_value tuple (Restricted.ORef a1)))
        (open_plan ctx input)
    | Plan.FlatMeth (a, m, recv, args, input) ->
      let call =
        memoized1 (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      unnest ctx a
        (fun tuple ->
          call (receiver_value tuple recv, List.map (operand_value tuple) args))
        (open_plan ctx input)
    | Plan.MapOp (a, op, xs, input) ->
      extend ctx a
        (fun tuple -> eval_op op (List.map (operand_value tuple) xs))
        (open_plan ctx input)
    | Plan.FlatOp (a, op, xs, input) ->
      unnest ctx a
        (fun tuple -> eval_op op (List.map (operand_value tuple) xs))
        (open_plan ctx input)
    | Plan.Project (rs, input) ->
      let rs = List.sort_uniq String.compare rs in
      let input = open_plan ctx input in
      let seen = Relation.Tbl.create 256 in
      let rec next () =
        match input.next () with
        | None -> None
        | Some tuple ->
          let projected = Relation.Tuple.project rs tuple in
          if Relation.Tbl.mem seen projected then next ()
          else (
            Relation.Tbl.replace seen projected ();
            Counters.charge_tuple (counters ctx);
            Some projected)
      in
      { next; close = input.close }

  let run ctx plan =
    let iter = open_plan ctx plan in
    let tuples = drain iter in
    Relation.make ~refs:(Plan.refs plan) tuples
end

(* ------------------------------------------------------------------ *)
(* Batch path: rows are [Value.t array]s indexed by compile-time       *)
(* slots, produced a block at a time.  The per-row loops below do      *)
(* integer indexing and array blits only — every name was resolved     *)
(* when the plan was compiled.                                         *)
(* ------------------------------------------------------------------ *)

(* 128 rows per block: the largest power of two for which a block's
   backing array (rows + header) still fits OCaml's minor heap
   allocation limit (Max_young_wosize = 256 words).  Bigger blocks are
   allocated directly on the major heap, where every stored row pointer
   pays a write barrier and the block itself drives major-GC marking —
   measured at 2-3x the per-row cost of the whole kernel. *)
let block_size = 128

type biter = {
  next_block : unit -> Relation.Row.t array option;
  close_blocks : unit -> unit;
}

type node_stats = {
  node_rows : int array;
  node_blocks : int array;
  node_morsels : int array;
  node_partitions : int array;
  node_pages : int array;
  node_bytes : int array;
}

let make_stats c =
  let n = Plan.node_count c in
  {
    node_rows = Array.make n 0;
    node_blocks = Array.make n 0;
    node_morsels = Array.make n 0;
    node_partitions = Array.make n 0;
    node_pages = Array.make n 0;
    node_bytes = Array.make n 0;
  }

(* -- row kernels ---------------------------------------------------- *)

let insert_row (row : Value.t array) at v =
  let w = Array.length row in
  let out = Array.make (w + 1) v in
  Array.blit row 0 out 0 at;
  Array.blit row at out (at + 1) (w - at);
  out

(* [Array.make] + [Array.blit] cost ~30ns per row (C calls), an order of
   magnitude more than the cons cells the interpreted executor allocates
   inline.  Since every operator's input width is fixed at compile time,
   the hot small widths are specialized to array literals — inline
   allocation with initializing stores, no write barrier — and only wide
   rows fall back to the generic blit path. *)
let make_inserter ~at ~width : Relation.Row.t -> Value.t -> Relation.Row.t =
  match width, at with
  | 0, _ -> fun _ v -> [| v |]
  | 1, 0 -> fun r v -> [| v; r.(0) |]
  | 1, _ -> fun r v -> [| r.(0); v |]
  | 2, 0 -> fun r v -> [| v; r.(0); r.(1) |]
  | 2, 1 -> fun r v -> [| r.(0); v; r.(1) |]
  | 2, _ -> fun r v -> [| r.(0); r.(1); v |]
  | 3, 0 -> fun r v -> [| v; r.(0); r.(1); r.(2) |]
  | 3, 1 -> fun r v -> [| r.(0); v; r.(1); r.(2) |]
  | 3, 2 -> fun r v -> [| r.(0); r.(1); v; r.(2) |]
  | 3, _ -> fun r v -> [| r.(0); r.(1); r.(2); v |]
  | 4, 0 -> fun r v -> [| v; r.(0); r.(1); r.(2); r.(3) |]
  | 4, 1 -> fun r v -> [| r.(0); v; r.(1); r.(2); r.(3) |]
  | 4, 2 -> fun r v -> [| r.(0); r.(1); v; r.(2); r.(3) |]
  | 4, 3 -> fun r v -> [| r.(0); r.(1); r.(2); v; r.(3) |]
  | 4, _ -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); v |]
  | 5, 0 -> fun r v -> [| v; r.(0); r.(1); r.(2); r.(3); r.(4) |]
  | 5, 1 -> fun r v -> [| r.(0); v; r.(1); r.(2); r.(3); r.(4) |]
  | 5, 2 -> fun r v -> [| r.(0); r.(1); v; r.(2); r.(3); r.(4) |]
  | 5, 3 -> fun r v -> [| r.(0); r.(1); r.(2); v; r.(3); r.(4) |]
  | 5, 4 -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); v; r.(4) |]
  | 5, _ -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); r.(4); v |]
  | 6, 0 -> fun r v -> [| v; r.(0); r.(1); r.(2); r.(3); r.(4); r.(5) |]
  | 6, 1 -> fun r v -> [| r.(0); v; r.(1); r.(2); r.(3); r.(4); r.(5) |]
  | 6, 2 -> fun r v -> [| r.(0); r.(1); v; r.(2); r.(3); r.(4); r.(5) |]
  | 6, 3 -> fun r v -> [| r.(0); r.(1); r.(2); v; r.(3); r.(4); r.(5) |]
  | 6, 4 -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); v; r.(4); r.(5) |]
  | 6, 5 -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); r.(4); v; r.(5) |]
  | 6, _ -> fun r v -> [| r.(0); r.(1); r.(2); r.(3); r.(4); r.(5); v |]
  | _ -> fun r v -> insert_row r at v

(* Replay a signed merge plan: [i >= 0] copies [l.(i)], [i < 0] copies
   [r.(-i - 1)] — see {!Relation.Layout.merge_plan}. *)
let merge_rows (plan : int array) (l : Value.t array) (r : Value.t array) =
  let w = Array.length plan in
  let out = Array.make w Value.Null in
  for i = 0 to w - 1 do
    let s = plan.(i) in
    out.(i) <- (if s >= 0 then l.(s) else r.(-s - 1))
  done;
  out

(* One side-resolved getter per output slot; widths up to 4 build the
   merged row as a literal. *)
let make_merger (plan : int array) =
  let g s : Relation.Row.t -> Relation.Row.t -> Value.t =
    if s >= 0 then fun l _ -> l.(s)
    else
      let j = -s - 1 in
      fun _ r -> r.(j)
  in
  match Array.map g plan with
  | [| a |] -> fun l r -> [| a l r |]
  | [| a; b |] -> fun l r -> [| a l r; b l r |]
  | [| a; b; c |] -> fun l r -> [| a l r; b l r; c l r |]
  | [| a; b; c; d |] -> fun l r -> [| a l r; b l r; c l r; d l r |]
  | [| a; b; c; d; e |] -> fun l r -> [| a l r; b l r; c l r; d l r; e l r |]
  | [| a; b; c; d; e; f |] ->
    fun l r -> [| a l r; b l r; c l r; d l r; e l r; f l r |]
  | [| a; b; c; d; e; f; g |] ->
    fun l r -> [| a l r; b l r; c l r; d l r; e l r; f l r; g l r |]
  | [| a; b; c; d; e; f; g; h |] ->
    fun l r -> [| a l r; b l r; c l r; d l r; e l r; f l r; g l r; h l r |]
  | _ -> fun l r -> merge_rows plan l r

let copy_row (srcs : int array) (row : Value.t array) =
  let w = Array.length srcs in
  if w = 0 then [||]
  else begin
    let out = Array.make w Value.Null in
    for i = 0 to w - 1 do
      out.(i) <- row.(srcs.(i))
    done;
    out
  end

let make_copier (srcs : int array) : Relation.Row.t -> Relation.Row.t =
  match srcs with
  | [||] -> fun _ -> [||]
  | [| a |] -> fun r -> [| r.(a) |]
  | [| a; b |] -> fun r -> [| r.(a); r.(b) |]
  | [| a; b; c |] -> fun r -> [| r.(a); r.(b); r.(c) |]
  | [| a; b; c; d |] -> fun r -> [| r.(a); r.(b); r.(c); r.(d) |]
  | [| a; b; c; d; e |] -> fun r -> [| r.(a); r.(b); r.(c); r.(d); r.(e) |]
  | [| a; b; c; d; e; f |] ->
    fun r -> [| r.(a); r.(b); r.(c); r.(d); r.(e); r.(f) |]
  | [| a; b; c; d; e; f; g |] ->
    fun r -> [| r.(a); r.(b); r.(c); r.(d); r.(e); r.(f); r.(g) |]
  | [| a; b; c; d; e; f; g; h |] ->
    fun r -> [| r.(a); r.(b); r.(c); r.(d); r.(e); r.(f); r.(g); r.(h) |]
  | _ -> fun r -> copy_row srcs r

(* Growable row buffer for kernels whose output cardinality is not
   known up front (joins, flattens). *)
module Rowbuf = struct
  type t = { mutable rows : Relation.Row.t array; mutable n : int }

  let create () = { rows = Array.make 64 [||]; n = 0 }

  let push b row =
    let cap = Array.length b.rows in
    if b.n = cap then begin
      let grown = Array.make (2 * cap) [||] in
      Array.blit b.rows 0 grown 0 b.n;
      b.rows <- grown
    end;
    b.rows.(b.n) <- row;
    b.n <- b.n + 1

  let contents b =
    if b.n = Array.length b.rows then b.rows else Array.sub b.rows 0 b.n
end

(* One output row per member of the set [f row], inserted via [ins];
   shared by the serial flat kernels and the morsel-parallel ones. *)
let expand_rows ins rows f =
  let acc = Rowbuf.create () in
  for i = 0 to Array.length rows - 1 do
    let row = rows.(i) in
    match f row with
    | Value.Set members ->
      List.iter (fun v -> Rowbuf.push acc (ins row v)) members
    | Value.Null -> ()
    | v -> error "flat operator produced non-set %s" (Value.to_string v)
  done;
  Rowbuf.contents acc

let slot_getter = function
  | Plan.SSlot i -> fun (row : Value.t array) -> row.(i)
  | Plan.SConst v -> fun _ -> v

let receiver_getter = function
  | Plan.RSlot i -> fun (row : Value.t array) -> row.(i)
  | Plan.RClassObj c ->
    let v = Value.Cls c in
    fun _ -> v

(* Build the operand list of a row without intermediate arrays. *)
let args_of getters (row : Relation.Row.t) =
  let rec go i =
    if i >= Array.length getters then [] else getters.(i) row :: go (i + 1)
  in
  go 0

(* Specialize an operator application at open time: the common arities
   dispatch straight to the kernel, skipping per-row operand lists. *)
let op_applier op (args : Plan.slot_operand array) : Relation.Row.t -> Value.t =
  let getters = Array.map slot_getter args in
  match op, getters with
  | Restricted.OpIdent, [| g |] -> g
  | Restricted.OpBin b, [| gx; gy |] ->
    fun row -> (
      try Runtime.eval_binop b (gx row) (gy row)
      with Runtime.Error msg -> error "%s" msg)
  | _ -> fun row -> eval_op op (args_of getters row)

(* -- fused kernels --------------------------------------------------- *)

(* The serial path memoizes with one shared table per step; the parallel
   path must not share tables across domains, so each worker gets its
   own ([per_worker_memo]).  This record abstracts the difference for
   the shared step compiler below. *)
type memoizer = { memo : 'a 'b. ('a -> 'b) -> w:int -> 'a -> 'b }

let shared_memo =
  { memo = (fun f -> let m = memoized1 f in fun ~w:_ key -> m key) }

(* Compile a fused chain's steps into per-row register kernels: each
   step reads/writes the register buffer in place and reports whether
   the row survives (filters short-circuit the rest of the chain).
   Registers are plain [Value.t array]s, so the slot/receiver getters
   apply unchanged. *)
let fused_steps_of ctx (mk : memoizer) (f : Plan.fused) :
    (w:int -> Value.t array -> bool) array =
  Array.map
    (fun (step : Plan.fstep) ->
      match step with
      | Plan.FFilter (cmp, x, y) ->
        (* operands resolved at compile time: the hot slot/const shapes
           index the registers directly instead of paying an unknown
           getter call per operand per row *)
        (match x, y with
        | Plan.SSlot i, Plan.SSlot j ->
          fun ~w:_ regs -> Value.truthy (eval_cmp cmp regs.(i) regs.(j))
        | Plan.SSlot i, Plan.SConst v ->
          fun ~w:_ regs -> Value.truthy (eval_cmp cmp regs.(i) v)
        | Plan.SConst v, Plan.SSlot j ->
          fun ~w:_ regs -> Value.truthy (eval_cmp cmp v regs.(j))
        | Plan.SConst u, Plan.SConst v ->
          fun ~w:_ _ -> Value.truthy (eval_cmp cmp u v))
      | Plan.FProp (r, p, recv) ->
        let access =
          mk.memo (fun rv ->
              try Runtime.access ctx.store rv p
              with Runtime.Error msg -> error "%s" msg)
        in
        fun ~w regs ->
          regs.(r) <- access ~w regs.(recv);
          true
      | Plan.FMeth (r, m, recv, args) ->
        let grecv = receiver_getter recv in
        let getters = Array.map slot_getter args in
        let call =
          mk.memo (fun (rv, avs) ->
              try Runtime.invoke ctx.store rv m avs
              with Runtime.Error msg -> error "%s" msg)
        in
        fun ~w regs ->
          regs.(r) <- call ~w (grecv regs, args_of getters regs);
          true
      | Plan.FOp (r, op, xs) ->
        (* same direct-indexing specialization for the common arities *)
        (match op, xs with
        | Restricted.OpIdent, [| Plan.SSlot i |] ->
          fun ~w:_ regs ->
            regs.(r) <- regs.(i);
            true
        | Restricted.OpIdent, [| Plan.SConst v |] ->
          fun ~w:_ regs ->
            regs.(r) <- v;
            true
        | Restricted.OpBin b, [| Plan.SSlot i; Plan.SSlot j |] ->
          fun ~w:_ regs ->
            regs.(r) <-
              (try Runtime.eval_binop b regs.(i) regs.(j)
               with Runtime.Error msg -> error "%s" msg);
            true
        | Restricted.OpBin b, [| Plan.SSlot i; Plan.SConst v |] ->
          fun ~w:_ regs ->
            regs.(r) <-
              (try Runtime.eval_binop b regs.(i) v
               with Runtime.Error msg -> error "%s" msg);
            true
        | Restricted.OpBin b, [| Plan.SConst v; Plan.SSlot j |] ->
          fun ~w:_ regs ->
            regs.(r) <-
              (try Runtime.eval_binop b v regs.(j)
               with Runtime.Error msg -> error "%s" msg);
            true
        | _ ->
          let apply = op_applier op xs in
          fun ~w:_ regs ->
            regs.(r) <- apply regs;
            true))
    f.Plan.fsteps

(* Whether the fused output row is the whole register file in order.
   True for every chain not topped by a projection (the output layout
   is a permutation of the registers; identity iff each map's sorted
   layout position happened to match its step order) — then the per-row
   register buffer doubles as the output row and there is no copy-out.
   For a pure selection chain ([fregs = fin_width]) it means surviving
   input rows pass through untouched. *)
let fused_out_is_regs (f : Plan.fused) =
  Array.length f.Plan.fout = f.Plan.fregs
  &&
  let ok = ref true in
  Array.iteri (fun i s -> if s <> i then ok := false) f.Plan.fout;
  !ok

(* Seed a fused chain's register file from the input row: registers
   0..fin_width-1 hold the row's slots, map targets start Null.  A
   fresh buffer per row, for the same reason [make_inserter] builds
   literals: a young block whose initializing stores skip the write
   barrier, so the steps' register stores all take the barrier's
   minor-heap quick path.  (The obvious alternative — one long-lived
   scratch buffer reused across rows — makes every register store an
   old-heap [caml_modify] that grows the remembered set, and measures
   ~40% slower than the unfused operators fusion replaces.)  Hot
   shapes are literals; wide register files fall back to
   [Array.make]/[Array.blit]. *)
let make_seeder ~fin_width ~fregs : Relation.Row.t -> Relation.Row.t =
  let o = Value.Null in
  match fin_width, fregs - fin_width with
  | _, 0 ->
    (* pure selection chain: no step writes, the row is the register
       file *)
    Fun.id
  | 1, 1 -> fun r -> [| r.(0); o |]
  | 1, 2 -> fun r -> [| r.(0); o; o |]
  | 1, 3 -> fun r -> [| r.(0); o; o; o |]
  | 1, 4 -> fun r -> [| r.(0); o; o; o; o |]
  | 1, 5 -> fun r -> [| r.(0); o; o; o; o; o |]
  | 1, 6 -> fun r -> [| r.(0); o; o; o; o; o; o |]
  | 2, 1 -> fun r -> [| r.(0); r.(1); o |]
  | 2, 2 -> fun r -> [| r.(0); r.(1); o; o |]
  | 2, 3 -> fun r -> [| r.(0); r.(1); o; o; o |]
  | 2, 4 -> fun r -> [| r.(0); r.(1); o; o; o; o |]
  | 3, 1 -> fun r -> [| r.(0); r.(1); r.(2); o |]
  | 3, 2 -> fun r -> [| r.(0); r.(1); r.(2); o; o |]
  | 3, 3 -> fun r -> [| r.(0); r.(1); r.(2); o; o; o |]
  | 4, 1 -> fun r -> [| r.(0); r.(1); r.(2); r.(3); o |]
  | 4, 2 -> fun r -> [| r.(0); r.(1); r.(2); r.(3); o; o |]
  | _ ->
    fun r ->
      let s = Array.make fregs o in
      Array.blit r 0 s 0 fin_width;
      s

(* Rejection marker for the fused row kernel: the empty-array atom,
   physically distinct from every register buffer (those are at least
   the input row's width, and relations never carry zero-width rows).
   Returning it instead of [None] keeps the surviving-row path free of
   option boxing. *)
let fused_rejected : Relation.Row.t = [||]

(* Top-level, not nested below: a nested [let rec] would capture its
   environment and heap-allocate one closure per row. *)
let rec run_steps (steps : (w:int -> Value.t array -> bool) array) ~w regs i n
    =
  i >= n || (steps.(i) ~w regs && run_steps steps ~w regs (i + 1) n)

(* Collapse the step array into one conjunction at open time: short
   chains — the common case — dispatch each step from a register of the
   caller, with no per-row array indexing or loop bookkeeping. *)
let step_runner (steps : (w:int -> Value.t array -> bool) array) :
    w:int -> Value.t array -> bool =
  match steps with
  | [| a |] -> a
  | [| a; b |] -> fun ~w regs -> a ~w regs && b ~w regs
  | [| a; b; c |] -> fun ~w regs -> a ~w regs && b ~w regs && c ~w regs
  | [| a; b; c; d |] ->
    fun ~w regs -> a ~w regs && b ~w regs && c ~w regs && d ~w regs
  | [| a; b; c; d; e |] ->
    fun ~w regs ->
      a ~w regs && b ~w regs && c ~w regs && d ~w regs && e ~w regs
  | [| a; b; c; d; e; f |] ->
    fun ~w regs ->
      a ~w regs && b ~w regs && c ~w regs && d ~w regs && e ~w regs
      && f ~w regs
  | _ -> fun ~w regs -> run_steps steps ~w regs 0 (Array.length steps)

(* One row through the chain: seed registers, run the steps (filters
   short-circuit), return the register file — the caller reads (or
   keeps) it before the next row builds a fresh one. *)
let fused_row run ~seed ~w row =
  let regs = seed row in
  if run ~w regs then regs else fused_rejected

let open_compiled ?stats ctx (root : Plan.compiled) : biter =
  let cnt = counters ctx in
  (* Every emitted block is recorded against its operator's [cid]:
     the block counter always, per-node rows/blocks when an [--analyze]
     stats sink is attached. *)
  let record cid (rows : Relation.Row.t array) =
    Counters.charge_block cnt;
    (match stats with
    | Some s ->
      s.node_rows.(cid) <- s.node_rows.(cid) + Array.length rows;
      s.node_blocks.(cid) <- s.node_blocks.(cid) + 1
    | None -> ());
    Some rows
  in
  (* Emit single-column blocks straight off a scan's result list — the
     extent is never materialized as one big (major-heap) array. *)
  let scan_blocks ?(charge = false) cid f xs =
    let remaining = ref xs in
    let next_block () =
      match !remaining with
      | [] -> None
      | xs ->
        let buf = Array.make block_size [||] in
        let k = ref 0 in
        let rec take xs =
          if !k = block_size then xs
          else
            match xs with
            | [] -> []
            | x :: rest ->
              if charge then Counters.charge_object_fetch cnt;
              buf.(!k) <- [| f x |];
              incr k;
              take rest
        in
        remaining := take xs;
        let out = if !k = block_size then buf else Array.sub buf 0 !k in
        record cid out
    in
    { next_block; close_blocks = (fun () -> remaining := []) }
  in
  (* Chunk a fully materialized row array into blocks. *)
  let of_rows cid (rows : Relation.Row.t array) =
    let n = Array.length rows in
    let pos = ref 0 in
    {
      next_block =
        (fun () ->
          if !pos >= n then None
          else begin
            let k = min block_size (n - !pos) in
            let out = Array.sub rows !pos k in
            pos := !pos + k;
            record cid out
          end);
      close_blocks = (fun () -> pos := n);
    }
  in
  (* Pull input blocks, expand each into an output row array, re-chunk
     into blocks of at most [block_size].  [charge] marks operators
     whose outputs count as produced tuples (parity with the
     interpreted executor's accounting). *)
  let expanding ~charge cid input expand =
    let pending = ref [||] in
    let pos = ref 0 in
    let rec next_block () =
      let avail = Array.length !pending - !pos in
      if avail > 0 then begin
        let out =
          if !pos = 0 && avail <= block_size then begin
            let p = !pending in
            pending := [||];
            p
          end
          else begin
            let k = min block_size avail in
            let o = Array.sub !pending !pos k in
            pos := !pos + k;
            o
          end
        in
        if charge then Counters.charge_tuples cnt (Array.length out);
        record cid out
      end
      else
        match input.next_block () with
        | None -> None
        | Some rows ->
          pending := expand rows;
          pos := 0;
          next_block ()
    in
    { next_block; close_blocks = input.close_blocks }
  in
  let drain_rows b =
    let rec go acc =
      match b.next_block () with None -> acc | Some rows -> go (rows :: acc)
    in
    let blocks = List.rev (go []) in
    b.close_blocks ();
    Array.concat blocks
  in
  (* Keep-subset kernel shared by filter/diff/project: [keep] decides
     per row (and may transform it). *)
  let filtering ~charge cid input keep =
    expanding ~charge cid input (fun rows ->
        let n = Array.length rows in
        let buf = Array.make n [||] in
        let k = ref 0 in
        for i = 0 to n - 1 do
          match keep rows.(i) with
          | Some row ->
            buf.(!k) <- row;
            incr k
          | None -> ()
        done;
        if !k = n then buf else Array.sub buf 0 !k)
  in
  (* Pure-predicate variant of [filtering]: rows pass unchanged, so no
     per-row [Some] allocation. *)
  let selecting ~charge cid input pred =
    expanding ~charge cid input (fun rows ->
        let n = Array.length rows in
        let buf = Array.make n [||] in
        let k = ref 0 in
        for i = 0 to n - 1 do
          let row = rows.(i) in
          if pred row then begin
            buf.(!k) <- row;
            incr k
          end
        done;
        if !k = n then buf else Array.sub buf 0 !k)
  in
  let rec go (c : Plan.compiled) : biter =
    let cid = c.Plan.cid in
    match c.Plan.cop with
    | Plan.CUnit -> of_rows cid [| [||] |]
    | Plan.CFullScan cls ->
      let oids =
        try Object_store.extent ctx.store cls
        with Invalid_argument msg -> error "%s" msg
      in
      (* an attached disk store drives the scan's traffic model through
         its buffer pool (charging pool counters) and reports the pages
         touched and bytes decoded — whole pages for a row-slotted
         class, chunk metadata for a columnar one *)
      (match ctx.scan_cost ~cls with
      | Some (pages, bytes) -> (
        match stats with
        | Some s ->
          s.node_pages.(cid) <- s.node_pages.(cid) + pages;
          s.node_bytes.(cid) <- s.node_bytes.(cid) + bytes
        | None -> ())
      | None -> ());
      scan_blocks ~charge:true cid (fun o -> Value.Obj o) oids
    | Plan.CIndexScan (cls, prop, key) -> (
      match ctx.probe_index ~cls ~prop key with
      | Some oids -> scan_blocks cid (fun o -> Value.Obj o) oids
      | None -> error "no index on %s.%s" cls prop)
    | Plan.CRangeScan (cls, prop, lo, hi) -> (
      match ctx.probe_range ~cls ~prop ~lo ~hi with
      | Some oids -> scan_blocks cid (fun o -> Value.Obj o) oids
      | None -> error "no ordered index on %s.%s" cls prop)
    | Plan.CMethodScan (cls, m, args) -> (
      match
        try Runtime.invoke ctx.store (Value.Cls cls) m args
        with Runtime.Error msg -> error "%s" msg
      with
      | Value.Set members -> scan_blocks cid Fun.id members
      | v ->
        error "method scan %s->%s produced non-set %s" cls m (Value.to_string v))
    | Plan.CFilter (cmp, x, y, input) ->
      let gx = slot_getter x and gy = slot_getter y in
      selecting ~charge:true cid (go input) (fun row ->
          Value.truthy (eval_cmp cmp (gx row) (gy row)))
    | Plan.CNestedLoop (pred, merge, left, right) ->
      (* Direct block producer: a [block_size] output buffer is filled
         from the (left row, right row) cursor pair — no intermediate
         per-left-block materialization of the cross product. *)
      let right_rows = lazy (drain_rows (go right)) in
      let merged_of = make_merger merge in
      let keep =
        match pred with
        | None -> fun _ -> true
        | Some (cmp, i, j) ->
          fun (merged : Value.t array) ->
            Value.truthy (eval_cmp cmp merged.(i) merged.(j))
      in
      let left = go left in
      let lrows = ref [||] in
      let li = ref 0 in
      let ri = ref 0 in
      let done_ = ref false in
      let rec next_block () =
        if !done_ then None
        else begin
          let rrows = Lazy.force right_rows in
          let nr = Array.length rrows in
          let buf = Array.make block_size [||] in
          let k = ref 0 in
          let rec fill () =
            if !k >= block_size then ()
            else if !li >= Array.length !lrows then
              match left.next_block () with
              | None -> done_ := true
              | Some rows ->
                lrows := rows;
                li := 0;
                ri := 0;
                fill ()
            else if !ri >= nr then begin
              incr li;
              ri := 0;
              fill ()
            end
            else begin
              let merged = merged_of (!lrows).(!li) rrows.(!ri) in
              incr ri;
              if keep merged then begin
                buf.(!k) <- merged;
                incr k
              end;
              fill ()
            end
          in
          fill ();
          if !k = 0 then next_block ()
          else begin
            let out = if !k = block_size then buf else Array.sub buf 0 !k in
            Counters.charge_tuples cnt !k;
            record cid out
          end
        end
      in
      { next_block; close_blocks = left.close_blocks }
    | Plan.CHashJoin (ls, rs, merge, left, right) ->
      (* Null keys never match (DESIGN.md §7): skipped on build and
         probe, exactly like the interpreted executor. *)
      let merged_of = make_merger merge in
      (* build side bucketed once (match lists in right-input order), so
         a probe is one lookup — no [find_all] list allocation *)
      let table =
        lazy
          (let rrows = drain_rows (go right) in
           (* sized to the build side up front: growing a hashtable
              rehashes every entry, roughly doubling build cost *)
           let tbl = Hashtbl.create (max 16 (Array.length rrows)) in
           for ri = Array.length rrows - 1 downto 0 do
             let rrow = rrows.(ri) in
             match rrow.(rs) with
             | Value.Null -> ()
             | key ->
               Hashtbl.replace tbl key
                 (rrow
                 ::
                 (match Hashtbl.find_opt tbl key with
                 | Some prev -> prev
                 | None -> []))
           done;
           tbl)
      in
      expanding ~charge:true cid (go left) (fun lrows ->
          let tbl = Lazy.force table in
          let acc = Rowbuf.create () in
          for li = 0 to Array.length lrows - 1 do
            let lrow = lrows.(li) in
            match lrow.(ls) with
            | Value.Null -> ()
            | key -> (
              match Hashtbl.find_opt tbl key with
              | None -> ()
              | Some matches ->
                List.iter
                  (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                  matches)
          done;
          Rowbuf.contents acc)
    | Plan.CNaturalJoin ([| il |], [| ir |], merge, left, right) ->
      (* one shared column: key by the value itself (structural match,
         so Nulls {e do} join — unlike the equi-join above) *)
      let merged_of = make_merger merge in
      let table =
        lazy
          (let rrows = drain_rows (go right) in
           let tbl = Hashtbl.create (max 16 (Array.length rrows)) in
           for ri = Array.length rrows - 1 downto 0 do
             let rrow = rrows.(ri) in
             let key = rrow.(ir) in
             Hashtbl.replace tbl key
               (rrow
               ::
               (match Hashtbl.find_opt tbl key with
               | Some prev -> prev
               | None -> []))
           done;
           tbl)
      in
      expanding ~charge:true cid (go left) (fun lrows ->
          let tbl = Lazy.force table in
          let acc = Rowbuf.create () in
          for li = 0 to Array.length lrows - 1 do
            let lrow = lrows.(li) in
            match Hashtbl.find_opt tbl lrow.(il) with
            | None -> ()
            | Some matches ->
              List.iter
                (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                matches
          done;
          Rowbuf.contents acc)
    | Plan.CNaturalJoin (kl, kr, merge, left, right) ->
      (* structural match on the shared columns: Nulls {e do} match,
         mirroring KeyTbl-based natural join / intersection. *)
      let merged_of = make_merger merge in
      let key_l = make_copier kl in
      let key_r = make_copier kr in
      let table =
        lazy
          (let rrows = drain_rows (go right) in
           let tbl = Relation.RowTbl.create (max 16 (Array.length rrows)) in
           Array.iter
             (fun rrow ->
               let key = key_r rrow in
               match Relation.RowTbl.find_opt tbl key with
               | Some prev -> Relation.RowTbl.replace tbl key (rrow :: prev)
               | None -> Relation.RowTbl.add tbl key [ rrow ])
             rrows;
           tbl)
      in
      expanding ~charge:true cid (go left) (fun lrows ->
          let tbl = Lazy.force table in
          let acc = Rowbuf.create () in
          for li = 0 to Array.length lrows - 1 do
            let lrow = lrows.(li) in
            match Relation.RowTbl.find_opt tbl (key_l lrow) with
            | None -> ()
            | Some matches ->
              List.iter
                (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                matches
          done;
          Rowbuf.contents acc)
    | Plan.CUnion (left, right) ->
      let left = go left in
      let right = lazy (go right) in
      let on_right = ref false in
      let rec next_block () =
        if !on_right then
          match (Lazy.force right).next_block () with
          | None -> None
          | Some rows -> record cid rows
        else
          match left.next_block () with
          | Some rows -> record cid rows
          | None ->
            on_right := true;
            next_block ()
      in
      {
        next_block;
        close_blocks =
          (fun () ->
            left.close_blocks ();
            if Lazy.is_val right then (Lazy.force right).close_blocks ());
      }
    | Plan.CDiff (left, right) ->
      (* the probe is decided once the exclusion side is drained: an
         empty exclusion set (constant-false restrictions are a common
         rewriting residue) makes diff a pass-through, skipping the
         per-row hash entirely *)
      let pred =
        lazy
          (let rrows = drain_rows (go right) in
           if Array.length rrows = 0 then fun _ -> true
           else begin
             let tbl = Relation.RowTbl.create (Array.length rrows) in
             Array.iter (fun row -> Relation.RowTbl.replace tbl row ()) rrows;
             fun row -> not (Relation.RowTbl.mem tbl row)
           end)
      in
      selecting ~charge:false cid (go left) (fun row -> (Lazy.force pred) row)
    | Plan.CMapProp (at, p, recv, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let access =
        memoized1 (fun rv ->
            try Runtime.access ctx.store rv p
            with Runtime.Error msg -> error "%s" msg)
      in
      expanding ~charge:true cid (go input)
        (Array.map (fun row -> ins row (access row.(recv))))
    | Plan.CMapMeth (at, m, recv, args, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let grecv = receiver_getter recv in
      let getters = Array.map slot_getter args in
      let call =
        memoized1 (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      expanding ~charge:true cid (go input)
        (Array.map (fun row -> ins row (call (grecv row, args_of getters row))))
    | Plan.CMapOp (at, op, args, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let apply = op_applier op args in
      expanding ~charge:true cid (go input)
        (Array.map (fun row -> ins row (apply row)))
    | Plan.CFlatProp (at, p, recv, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let access =
        memoized1 (fun rv ->
            try Runtime.access ctx.store rv p
            with Runtime.Error msg -> error "%s" msg)
      in
      expanding ~charge:true cid (go input) (fun rows ->
          expand_rows ins rows (fun row -> access row.(recv)))
    | Plan.CFlatMeth (at, m, recv, args, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let grecv = receiver_getter recv in
      let getters = Array.map slot_getter args in
      let call =
        memoized1 (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      expanding ~charge:true cid (go input) (fun rows ->
          expand_rows ins rows (fun row -> call (grecv row, args_of getters row)))
    | Plan.CFlatOp (at, op, args, input) ->
      let ins = make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout) in
      let apply = op_applier op args in
      expanding ~charge:true cid (go input) (fun rows ->
          expand_rows ins rows apply)
    | Plan.CProject (srcs, input) when Plan.keyed_projection srcs input ->
      (* the kept slots cover a key of the input, so rows are already
         distinct: copy-out only, no dedup table (DESIGN.md §9) *)
      let proj = make_copier srcs in
      expanding ~charge:true cid (go input) (fun rows -> Array.map proj rows)
    | Plan.CProject ([| i |], input) ->
      (* single-column projection: dedup keyed by the value itself, no
         per-row key array *)
      let seen = Hashtbl.create 256 in
      filtering ~charge:true cid (go input) (fun row ->
          let v = row.(i) in
          if Hashtbl.mem seen v then None
          else begin
            (* [add], not [replace]: the membership check just ran, so
               the cheaper no-search insert is safe *)
            Hashtbl.add seen v ();
            Some [| v |]
          end)
    | Plan.CProject (srcs, input) ->
      let proj = make_copier srcs in
      let seen = Relation.RowTbl.create 256 in
      filtering ~charge:true cid (go input) (fun row ->
          let projected = proj row in
          if Relation.RowTbl.mem seen projected then None
          else begin
            Relation.RowTbl.add seen projected ();
            Some projected
          end)
    | Plan.CFused (f, input) ->
      let run = step_runner (fused_steps_of ctx shared_memo f) in
      let seed = make_seeder ~fin_width:f.Plan.fin_width ~fregs:f.Plan.fregs in
      let eval_regs row = fused_row run ~seed ~w:0 row in
      if f.Plan.fdedup && not f.Plan.fkeyed then
        (* dedup mirrors the standalone projection kernels: values keyed
           directly when one column survives, RowTbl otherwise *)
        (match f.Plan.fout with
        | [| src |] ->
          let seen = Hashtbl.create 256 in
          filtering ~charge:true cid (go input) (fun row ->
              let regs = eval_regs row in
              if regs == fused_rejected then None
              else
                let v = regs.(src) in
                if Hashtbl.mem seen v then None
                else begin
                  Hashtbl.add seen v ();
                  Some [| v |]
                end)
        | srcs ->
          let proj = make_copier srcs in
          let seen = Relation.RowTbl.create 256 in
          filtering ~charge:true cid (go input) (fun row ->
              let regs = eval_regs row in
              if regs == fused_rejected then None
              else
                let projected = proj regs in
                if Relation.RowTbl.mem seen projected then None
                else begin
                  Relation.RowTbl.add seen projected ();
                  Some projected
                end))
      else begin
        (* non-dedup: the register file is fresh per row, so when the
           output is the whole file it is emitted as-is — one allocation
           per surviving row, no option boxing anywhere *)
        let out_of =
          if fused_out_is_regs f then Fun.id else make_copier f.Plan.fout
        in
        expanding ~charge:true cid (go input) (fun rows ->
            let n = Array.length rows in
            let buf = Array.make n [||] in
            let k = ref 0 in
            for i = 0 to n - 1 do
              let regs = eval_regs rows.(i) in
              if regs != fused_rejected then begin
                buf.(!k) <- out_of regs;
                incr k
              end
            done;
            if !k = n then buf else Array.sub buf 0 !k)
      end
  in
  go root

let drain_blocks b =
  let rec go acc =
    match b.next_block () with None -> acc | Some rows -> go (rows :: acc)
  in
  let blocks = List.rev (go []) in
  b.close_blocks ();
  blocks

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel path: every operator materializes its output *)
(* as one row array; workers claim fixed-size morsels of the input via *)
(* an atomic cursor and write their results into morsel-indexed slots, *)
(* so the concatenated output is row-for-row identical to a serial     *)
(* left-to-right pass no matter which worker ran which morsel.  Joins  *)
(* and diff partition the build side by key hash and build one table   *)
(* per partition (each preserving build-input order), so probes are    *)
(* lock-free reads of tables published by the pool's join barrier.     *)
(* ------------------------------------------------------------------ *)

(* 1024 rows per morsel: big enough that the atomic cursor and the
   per-morsel allocations are noise next to the kernel work (a morsel is
   8 blocks of the serial executor's dispatch unit), small enough that a
   3200-document scan still splits into enough morsels to keep four
   workers busy and to absorb skew from expensive rows (method calls). *)
let morsel_size = 1024

(* Partitions for the hash-join / diff build sides: the smallest power
   of two >= jobs, so [hash land (nparts - 1)] spreads build work over
   all workers while keeping partition tables few and large. *)
let partition_count jobs =
  let rec go p = if p >= jobs then p else go (2 * p) in
  go 1

let eval_parallel ?stats ctx ~jobs (root : Plan.compiled) :
    Relation.Row.t array =
  let pool = Pool.global () in
  let cnt = counters ctx in
  let nparts = partition_count jobs in
  let morsels_of n = (n + morsel_size - 1) / morsel_size in
  (* Block accounting mirrors the serial executor: an operator's
     materialized output counts as ceil(n / block_size) blocks. *)
  let record cid ~morsels ~partitions (rows : Relation.Row.t array) =
    let n = Array.length rows in
    let blocks = (n + block_size - 1) / block_size in
    Counters.charge_blocks cnt blocks;
    (match stats with
    | Some s ->
      s.node_rows.(cid) <- s.node_rows.(cid) + n;
      s.node_blocks.(cid) <- s.node_blocks.(cid) + blocks;
      s.node_morsels.(cid) <- s.node_morsels.(cid) + morsels;
      s.node_partitions.(cid) <- s.node_partitions.(cid) + partitions
    | None -> ());
    rows
  in
  (* Hand task ids [0, m) to the pool's workers via an atomic cursor. *)
  let parallel_for m (f : w:int -> int -> unit) =
    if m = 1 then f ~w:0 0
    else if m > 1 then begin
      let cursor = Atomic.make 0 in
      Pool.run pool ~jobs (fun w ->
          let rec claim () =
            let i = Atomic.fetch_and_add cursor 1 in
            if i < m then begin
              f ~w i;
              claim ()
            end
          in
          claim ())
    end
  in
  (* Morsel-parallel map over index range [0, n): each morsel's output
     lands in its own slot and the slots are concatenated in morsel
     order (the determinism argument, DESIGN.md §10). *)
  let chunked n (f : w:int -> lo:int -> hi:int -> Relation.Row.t array) =
    let m = morsels_of n in
    if m = 0 then [||]
    else if m = 1 then f ~w:0 ~lo:0 ~hi:n
    else begin
      let out = Array.make m [||] in
      parallel_for m (fun ~w i ->
          let lo = i * morsel_size in
          out.(i) <- f ~w ~lo ~hi:(min n (lo + morsel_size)));
      Array.concat (Array.to_list out)
    end
  in
  (* 1:1 kernels write straight into a preallocated output array. *)
  let mapped rows (f : w:int -> Relation.Row.t -> Relation.Row.t) =
    let n = Array.length rows in
    let out = Array.make n [||] in
    parallel_for (morsels_of n) (fun ~w i ->
        let lo = i * morsel_size in
        let hi = min n (lo + morsel_size) in
        for j = lo to hi - 1 do
          out.(j) <- f ~w rows.(j)
        done);
    out
  in
  (* The serial kernels share one memo table per operator; across
     domains that would race, so each worker memoizes privately.  The
     result rows are unaffected — only the property-read / method-call
     tallies may exceed the serial run's (each worker warms its own
     cache). *)
  let per_worker_memo : 'a 'b. ('a -> 'b) -> w:int -> 'a -> 'b =
   fun f ->
    let memos = Array.init (max 1 jobs) (fun _ -> Hashtbl.create 64) in
    fun ~w key ->
      let memo = memos.(w) in
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        let v = f key in
        Hashtbl.replace memo key v;
        v
  in
  (* Ordered two-phase partitioning of a materialized build side.
     Phase A buckets each morsel into [nparts] per-morsel row buffers
     (morsel order preserved inside each bucket); phase B concatenates
     partition [p]'s buckets in morsel order — recovering build-input
     order — and folds them into that partition's table, one worker per
     partition.  The pool join between the phases publishes the
     buckets; the join after phase B publishes the tables to probes. *)
  let partitioned :
      'tbl.
      Relation.Row.t array ->
      (Relation.Row.t -> int option) ->
      (Relation.Row.t array -> 'tbl) ->
      'tbl array =
   fun rows part_of build ->
    let n = Array.length rows in
    if nparts = 1 || n <= morsel_size then begin
      (* build side under one morsel: a single shared table built on the
         caller — the two-phase bucket/build machinery would cost more
         than it parallelizes (ROADMAP "partition skew").  [part_of]
         still filters (Null join keys must not enter the table); probe
         sites mask the partition index against the table count, which
         collapses to 0 here. *)
      let keep = Rowbuf.create () in
      Array.iter
        (fun row ->
          match part_of row with Some _ -> Rowbuf.push keep row | None -> ())
        rows;
      [| build (Rowbuf.contents keep) |]
    end
    else begin
    let m = morsels_of n in
    let buckets = Array.make (max 1 m) [||] in
    parallel_for m (fun ~w:_ i ->
        let lo = i * morsel_size in
        let hi = min n (lo + morsel_size) in
        let bufs = Array.init nparts (fun _ -> Rowbuf.create ()) in
        for j = lo to hi - 1 do
          let row = rows.(j) in
          match part_of row with
          | Some p -> Rowbuf.push bufs.(p) row
          | None -> ()
        done;
        buckets.(i) <- Array.map Rowbuf.contents bufs);
    let tables = Array.make nparts None in
    parallel_for nparts (fun ~w:_ p ->
        let parts = Array.init m (fun i -> buckets.(i).(p)) in
        tables.(p) <- Some (build (Array.concat (Array.to_list parts))));
    Array.map Option.get tables
    end
  in
  let scan_rows cid oids =
    let oids = Array.of_list oids in
    let n = Array.length oids in
    let rows =
      chunked n (fun ~w:_ ~lo ~hi ->
          Array.init (hi - lo) (fun i -> [| Value.Obj oids.(lo + i) |]))
    in
    record cid ~morsels:(morsels_of n) ~partitions:0 rows
  in
  let rec eval (c : Plan.compiled) : Relation.Row.t array =
    let cid = c.Plan.cid in
    match c.Plan.cop with
    | Plan.CUnit -> record cid ~morsels:0 ~partitions:0 [| [||] |]
    | Plan.CFullScan cls ->
      let oids =
        try Object_store.extent ctx.store cls
        with Invalid_argument msg -> error "%s" msg
      in
      Counters.charge_object_fetches cnt (List.length oids);
      (match ctx.scan_cost ~cls with
      | Some (pages, bytes) -> (
        match stats with
        | Some s ->
          s.node_pages.(cid) <- s.node_pages.(cid) + pages;
          s.node_bytes.(cid) <- s.node_bytes.(cid) + bytes
        | None -> ())
      | None -> ());
      scan_rows cid oids
    | Plan.CIndexScan (cls, prop, key) -> (
      match ctx.probe_index ~cls ~prop key with
      | Some oids -> scan_rows cid oids
      | None -> error "no index on %s.%s" cls prop)
    | Plan.CRangeScan (cls, prop, lo, hi) -> (
      match ctx.probe_range ~cls ~prop ~lo ~hi with
      | Some oids -> scan_rows cid oids
      | None -> error "no ordered index on %s.%s" cls prop)
    | Plan.CMethodScan (cls, m, args) -> (
      match
        try Runtime.invoke ctx.store (Value.Cls cls) m args
        with Runtime.Error msg -> error "%s" msg
      with
      | Value.Set members ->
        let members = Array.of_list members in
        let n = Array.length members in
        let rows =
          chunked n (fun ~w:_ ~lo ~hi ->
              Array.init (hi - lo) (fun i -> [| members.(lo + i) |]))
        in
        record cid ~morsels:(morsels_of n) ~partitions:0 rows
      | v ->
        error "method scan %s->%s produced non-set %s" cls m (Value.to_string v))
    | Plan.CFilter (cmp, x, y, input) ->
      let gx = slot_getter x and gy = slot_getter y in
      let rows = eval input in
      let n = Array.length rows in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            let buf = Array.make (hi - lo) [||] in
            let k = ref 0 in
            for i = lo to hi - 1 do
              let row = rows.(i) in
              if Value.truthy (eval_cmp cmp (gx row) (gy row)) then begin
                buf.(!k) <- row;
                incr k
              end
            done;
            if !k = hi - lo then buf else Array.sub buf 0 !k)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of n) ~partitions:0 out
    | Plan.CNestedLoop (pred, merge, left, right) ->
      let merged_of = make_merger merge in
      let keep =
        match pred with
        | None -> fun _ -> true
        | Some (cmp, i, j) ->
          fun (merged : Value.t array) ->
            Value.truthy (eval_cmp cmp merged.(i) merged.(j))
      in
      let rrows = eval right in
      let lrows = eval left in
      let n = Array.length lrows in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            let acc = Rowbuf.create () in
            for i = lo to hi - 1 do
              let lrow = lrows.(i) in
              for j = 0 to Array.length rrows - 1 do
                let merged = merged_of lrow rrows.(j) in
                if keep merged then Rowbuf.push acc merged
              done
            done;
            Rowbuf.contents acc)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of n) ~partitions:0 out
    | Plan.CHashJoin (ls, rs, merge, left, right) ->
      (* Null keys never match (DESIGN.md §7): dropped while bucketing
         the build side, skipped on probe. *)
      let merged_of = make_merger merge in
      let part_of_key key = Hashtbl.hash key land (nparts - 1) in
      let rrows = eval right in
      let tables =
        partitioned rrows
          (fun row ->
            match row.(rs) with
            | Value.Null -> None
            | key -> Some (part_of_key key))
          (fun rows ->
            let tbl = Hashtbl.create (max 16 (Array.length rows)) in
            (* reverse iteration + prepend: match lists come out in
               build-input order, same as the serial executor *)
            for i = Array.length rows - 1 downto 0 do
              let rrow = rows.(i) in
              let key = rrow.(rs) in
              Hashtbl.replace tbl key
                (rrow
                ::
                (match Hashtbl.find_opt tbl key with
                | Some prev -> prev
                | None -> []))
            done;
            tbl)
      in
      let lrows = eval left in
      let n = Array.length lrows in
      (* [tables] may have collapsed to a single shared table (tiny build
         side); masking against its actual length covers both shapes *)
      let pmask = Array.length tables - 1 in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            let acc = Rowbuf.create () in
            for i = lo to hi - 1 do
              let lrow = lrows.(i) in
              match lrow.(ls) with
              | Value.Null -> ()
              | key -> (
                match
                  Hashtbl.find_opt tables.(part_of_key key land pmask) key
                with
                | None -> ()
                | Some matches ->
                  List.iter
                    (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                    matches)
            done;
            Rowbuf.contents acc)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid
        ~morsels:(morsels_of (Array.length rrows) + morsels_of n)
        ~partitions:(Array.length tables) out
    | Plan.CNaturalJoin ([| il |], [| ir |], merge, left, right) ->
      (* structural match on the one shared column: Nulls {e do} join *)
      let merged_of = make_merger merge in
      let part_of_key key = Hashtbl.hash key land (nparts - 1) in
      let rrows = eval right in
      let tables =
        partitioned rrows
          (fun row -> Some (part_of_key row.(ir)))
          (fun rows ->
            let tbl = Hashtbl.create (max 16 (Array.length rows)) in
            for i = Array.length rows - 1 downto 0 do
              let rrow = rows.(i) in
              let key = rrow.(ir) in
              Hashtbl.replace tbl key
                (rrow
                ::
                (match Hashtbl.find_opt tbl key with
                | Some prev -> prev
                | None -> []))
            done;
            tbl)
      in
      let lrows = eval left in
      let n = Array.length lrows in
      let pmask = Array.length tables - 1 in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            let acc = Rowbuf.create () in
            for i = lo to hi - 1 do
              let lrow = lrows.(i) in
              let key = lrow.(il) in
              match
                Hashtbl.find_opt tables.(part_of_key key land pmask) key
              with
              | None -> ()
              | Some matches ->
                List.iter
                  (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                  matches
            done;
            Rowbuf.contents acc)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid
        ~morsels:(morsels_of (Array.length rrows) + morsels_of n)
        ~partitions:(Array.length tables) out
    | Plan.CNaturalJoin (kl, kr, merge, left, right) ->
      let merged_of = make_merger merge in
      let key_l = make_copier kl in
      let key_r = make_copier kr in
      let part_of_key key = Relation.Row.hash key land (nparts - 1) in
      let rrows = eval right in
      let tables =
        partitioned rrows
          (fun row -> Some (part_of_key (key_r row)))
          (fun rows ->
            let tbl = Relation.RowTbl.create (max 16 (Array.length rows)) in
            for i = Array.length rows - 1 downto 0 do
              let rrow = rows.(i) in
              let key = key_r rrow in
              Relation.RowTbl.replace tbl key
                (rrow
                ::
                (match Relation.RowTbl.find_opt tbl key with
                | Some prev -> prev
                | None -> []))
            done;
            tbl)
      in
      let lrows = eval left in
      let n = Array.length lrows in
      let pmask = Array.length tables - 1 in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            let acc = Rowbuf.create () in
            for i = lo to hi - 1 do
              let lrow = lrows.(i) in
              let key = key_l lrow in
              match
                Relation.RowTbl.find_opt tables.(part_of_key key land pmask)
                  key
              with
              | None -> ()
              | Some matches ->
                List.iter
                  (fun rrow -> Rowbuf.push acc (merged_of lrow rrow))
                  matches
            done;
            Rowbuf.contents acc)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid
        ~morsels:(morsels_of (Array.length rrows) + morsels_of n)
        ~partitions:(Array.length tables) out
    | Plan.CUnion (left, right) ->
      let l = eval left in
      let r = eval right in
      record cid ~morsels:0 ~partitions:0 (Array.append l r)
    | Plan.CDiff (left, right) ->
      let rrows = eval right in
      let lrows = eval left in
      if Array.length rrows = 0 then
        (* empty exclusion set: diff is a pass-through (same fast path
           as the serial executor) *)
        record cid ~morsels:0 ~partitions:0 lrows
      else begin
        let part_of row = Relation.Row.hash row land (nparts - 1) in
        let tables =
          partitioned rrows
            (fun row -> Some (part_of row))
            (fun rows ->
              let tbl = Relation.RowTbl.create (max 16 (Array.length rows)) in
              Array.iter (fun row -> Relation.RowTbl.replace tbl row ()) rows;
              tbl)
        in
        let n = Array.length lrows in
        let pmask = Array.length tables - 1 in
        let out =
          chunked n (fun ~w:_ ~lo ~hi ->
              let buf = Array.make (hi - lo) [||] in
              let k = ref 0 in
              for i = lo to hi - 1 do
                let row = lrows.(i) in
                if not (Relation.RowTbl.mem tables.(part_of row land pmask) row)
                then begin
                  buf.(!k) <- row;
                  incr k
                end
              done;
              if !k = hi - lo then buf else Array.sub buf 0 !k)
        in
        record cid
          ~morsels:(morsels_of (Array.length rrows) + morsels_of n)
          ~partitions:(Array.length tables) out
      end
    | Plan.CMapProp (at, p, recv, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let access =
        per_worker_memo (fun rv ->
            try Runtime.access ctx.store rv p
            with Runtime.Error msg -> error "%s" msg)
      in
      let rows = eval input in
      let out = mapped rows (fun ~w row -> ins row (access ~w row.(recv))) in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of (Array.length rows)) ~partitions:0 out
    | Plan.CMapMeth (at, m, recv, args, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let grecv = receiver_getter recv in
      let getters = Array.map slot_getter args in
      let call =
        per_worker_memo (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      let rows = eval input in
      let out =
        mapped rows (fun ~w row ->
            ins row (call ~w (grecv row, args_of getters row)))
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of (Array.length rows)) ~partitions:0 out
    | Plan.CMapOp (at, op, args, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let apply = op_applier op args in
      let rows = eval input in
      let out = mapped rows (fun ~w:_ row -> ins row (apply row)) in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of (Array.length rows)) ~partitions:0 out
    | Plan.CFlatProp (at, p, recv, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let access =
        per_worker_memo (fun rv ->
            try Runtime.access ctx.store rv p
            with Runtime.Error msg -> error "%s" msg)
      in
      let rows = eval input in
      let n = Array.length rows in
      let out =
        chunked n (fun ~w ~lo ~hi ->
            expand_rows ins (Array.sub rows lo (hi - lo)) (fun row ->
                access ~w row.(recv)))
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of n) ~partitions:0 out
    | Plan.CFlatMeth (at, m, recv, args, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let grecv = receiver_getter recv in
      let getters = Array.map slot_getter args in
      let call =
        per_worker_memo (fun (rv, avs) ->
            try Runtime.invoke ctx.store rv m avs
            with Runtime.Error msg -> error "%s" msg)
      in
      let rows = eval input in
      let n = Array.length rows in
      let out =
        chunked n (fun ~w ~lo ~hi ->
            expand_rows ins (Array.sub rows lo (hi - lo)) (fun row ->
                call ~w (grecv row, args_of getters row)))
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of n) ~partitions:0 out
    | Plan.CFlatOp (at, op, args, input) ->
      let ins =
        make_inserter ~at ~width:(Relation.Layout.width input.Plan.layout)
      in
      let apply = op_applier op args in
      let rows = eval input in
      let n = Array.length rows in
      let out =
        chunked n (fun ~w:_ ~lo ~hi ->
            expand_rows ins (Array.sub rows lo (hi - lo)) apply)
      in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of n) ~partitions:0 out
    | Plan.CProject (srcs, input) when Plan.keyed_projection srcs input ->
      (* provably-distinct projection (see the serial kernel): a pure
         1:1 copy-out, fully parallel, no dedup merge *)
      let proj = make_copier srcs in
      let rows = eval input in
      let out = mapped rows (fun ~w:_ row -> proj row) in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:(morsels_of (Array.length out)) ~partitions:0 out
    | Plan.CProject ([| i |], input) ->
      (* per-morsel local dedup in parallel, then a serial merge in
         morsel order: the survivors are exactly the first occurrences
         a serial pass would keep, in the same order *)
      let rows = eval input in
      let n = Array.length rows in
      let m = morsels_of n in
      let locals = Array.make (max 1 m) [||] in
      parallel_for m (fun ~w:_ mi ->
          let lo = mi * morsel_size in
          let hi = min n (lo + morsel_size) in
          let seen = Hashtbl.create 64 in
          let acc = Rowbuf.create () in
          for j = lo to hi - 1 do
            let v = rows.(j).(i) in
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              Rowbuf.push acc [| v |]
            end
          done;
          locals.(mi) <- Rowbuf.contents acc);
      let seen = Hashtbl.create 256 in
      let acc = Rowbuf.create () in
      Array.iter
        (Array.iter (fun row ->
             let v = row.(0) in
             if not (Hashtbl.mem seen v) then begin
               Hashtbl.add seen v ();
               Rowbuf.push acc row
             end))
        locals;
      let out = Rowbuf.contents acc in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:m ~partitions:0 out
    | Plan.CProject (srcs, input) ->
      let proj = make_copier srcs in
      let rows = eval input in
      let n = Array.length rows in
      let m = morsels_of n in
      let locals = Array.make (max 1 m) [||] in
      parallel_for m (fun ~w:_ mi ->
          let lo = mi * morsel_size in
          let hi = min n (lo + morsel_size) in
          let seen = Relation.RowTbl.create 64 in
          let acc = Rowbuf.create () in
          for j = lo to hi - 1 do
            let projected = proj rows.(j) in
            if not (Relation.RowTbl.mem seen projected) then begin
              Relation.RowTbl.add seen projected ();
              Rowbuf.push acc projected
            end
          done;
          locals.(mi) <- Rowbuf.contents acc);
      let seen = Relation.RowTbl.create 256 in
      let acc = Rowbuf.create () in
      Array.iter
        (Array.iter (fun projected ->
             if not (Relation.RowTbl.mem seen projected) then begin
               Relation.RowTbl.add seen projected ();
               Rowbuf.push acc projected
             end))
        locals;
      let out = Rowbuf.contents acc in
      Counters.charge_tuples cnt (Array.length out);
      record cid ~morsels:m ~partitions:0 out
    | Plan.CFused (f, input) ->
      let run = step_runner (fused_steps_of ctx { memo = per_worker_memo } f) in
      let seed = make_seeder ~fin_width:f.Plan.fin_width ~fregs:f.Plan.fregs in
      (* register buffers are fresh per row (see [make_seeder]), so
         workers share nothing but the steps *)
      let eval_regs ~w row = fused_row run ~seed ~w row in
      let rows = eval input in
      let n = Array.length rows in
      let m = morsels_of n in
      if not (f.Plan.fdedup && not f.Plan.fkeyed) then begin
        let out_of =
          if fused_out_is_regs f then Fun.id else make_copier f.Plan.fout
        in
        let out =
          chunked n (fun ~w ~lo ~hi ->
              let buf = Array.make (hi - lo) [||] in
              let k = ref 0 in
              for i = lo to hi - 1 do
                let regs = eval_regs ~w rows.(i) in
                if regs != fused_rejected then begin
                  buf.(!k) <- out_of regs;
                  incr k
                end
              done;
              if !k = hi - lo then buf else Array.sub buf 0 !k)
        in
        Counters.charge_tuples cnt (Array.length out);
        record cid ~morsels:m ~partitions:0 out
      end
      else begin
        (* per-morsel local dedup + serial merge in morsel order: the
           survivors are exactly the first occurrences a serial pass
           would keep, in the same order (same argument as the
           standalone projection kernels above) *)
        let locals = Array.make (max 1 m) [||] in
        let out =
          match f.Plan.fout with
          | [| src |] ->
            parallel_for m (fun ~w mi ->
                let lo = mi * morsel_size in
                let hi = min n (lo + morsel_size) in
                let seen = Hashtbl.create 64 in
                let acc = Rowbuf.create () in
                for j = lo to hi - 1 do
                  let regs = eval_regs ~w rows.(j) in
                  if regs != fused_rejected then begin
                    let v = regs.(src) in
                    if not (Hashtbl.mem seen v) then begin
                      Hashtbl.add seen v ();
                      Rowbuf.push acc [| v |]
                    end
                  end
                done;
                locals.(mi) <- Rowbuf.contents acc);
            let seen = Hashtbl.create 256 in
            let acc = Rowbuf.create () in
            Array.iter
              (Array.iter (fun row ->
                   let v = row.(0) in
                   if not (Hashtbl.mem seen v) then begin
                     Hashtbl.add seen v ();
                     Rowbuf.push acc row
                   end))
              locals;
            Rowbuf.contents acc
          | srcs ->
            let proj = make_copier srcs in
            parallel_for m (fun ~w mi ->
                let lo = mi * morsel_size in
                let hi = min n (lo + morsel_size) in
                let seen = Relation.RowTbl.create 64 in
                let acc = Rowbuf.create () in
                for j = lo to hi - 1 do
                  let regs = eval_regs ~w rows.(j) in
                  if regs != fused_rejected then begin
                    let projected = proj regs in
                    if not (Relation.RowTbl.mem seen projected) then begin
                      Relation.RowTbl.add seen projected ();
                      Rowbuf.push acc projected
                    end
                  end
                done;
                locals.(mi) <- Rowbuf.contents acc);
            let seen = Relation.RowTbl.create 256 in
            let acc = Rowbuf.create () in
            Array.iter
              (Array.iter (fun projected ->
                   if not (Relation.RowTbl.mem seen projected) then begin
                     Relation.RowTbl.add seen projected ();
                     Rowbuf.push acc projected
                   end))
              locals;
            Rowbuf.contents acc
        in
        Counters.charge_tuples cnt (Array.length out);
        record cid ~morsels:m ~partitions:0 out
      end
  in
  eval root

let compile ?fuse ctx plan =
  try Plan.compile ?fuse plan
  with Plan.Compile_error msg ->
    Counters.charge_slot_miss (counters ctx);
    error "%s" msg

(* Workers beyond the cores the host can actually run concurrently only
   add domain-handoff latency, and a plan whose every leaf extent fits in
   a single morsel degenerates to one work unit per operator — all
   spawn/join cost, zero overlap.  [effective_jobs] caps the request at
   [Domain.recommended_domain_count] and falls back to the serial block
   executor for such sub-morsel plans; [~clamp:false] bypasses both (the
   determinism tests exercise the parallel internals on small inputs). *)
let effective_jobs ctx jobs (c : Plan.compiled) =
  let jobs = min jobs (Domain.recommended_domain_count ()) in
  if jobs <= 1 then 1
  else
    let rec widest (c : Plan.compiled) =
      let ext cls =
        try Object_store.extent_size ctx.store cls with Not_found -> 0
      in
      match c.Plan.cop with
      | Plan.CUnit -> 0
      | Plan.CFullScan cls
      | Plan.CIndexScan (cls, _, _)
      | Plan.CRangeScan (cls, _, _, _)
      | Plan.CMethodScan (cls, _, _) ->
        ext cls
      | Plan.CFilter (_, _, _, i)
      | Plan.CMapProp (_, _, _, i)
      | Plan.CMapMeth (_, _, _, _, i)
      | Plan.CFlatProp (_, _, _, i)
      | Plan.CFlatMeth (_, _, _, _, i)
      | Plan.CMapOp (_, _, _, i)
      | Plan.CFlatOp (_, _, _, i)
      | Plan.CProject (_, i)
      | Plan.CFused (_, i) ->
        widest i
      | Plan.CNestedLoop (_, _, l, r)
      | Plan.CHashJoin (_, _, _, l, r)
      | Plan.CNaturalJoin (_, _, _, l, r)
      | Plan.CUnion (l, r)
      | Plan.CDiff (l, r) ->
        max (widest l) (widest r)
    in
    if widest c <= morsel_size then 1 else jobs

let run_compiled ?stats ?(jobs = 1) ?(clamp = true) ctx (c : Plan.compiled) =
  let jobs = if clamp then effective_jobs ctx jobs c else jobs in
  let layout = c.Plan.layout in
  let tuples =
    if jobs > 1 then
      Array.to_list
        (Array.map
           (Relation.Layout.tuple_of_row layout)
           (eval_parallel ?stats ctx ~jobs c))
    else
      List.concat_map
        (fun rows ->
          Array.to_list (Array.map (Relation.Layout.tuple_of_row layout) rows))
        (drain_blocks (open_compiled ?stats ctx c))
  in
  Relation.make ~refs:(Relation.Layout.names layout) tuples

let run ?jobs ?clamp ctx plan = run_compiled ?jobs ?clamp ctx (compile ctx plan)
