open Soqm_vml
open Soqm_algebra

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type ctx = {
  store : Object_store.t;
  probe_index : cls:string -> prop:string -> Value.t -> Oid.t list option;
  probe_range :
    cls:string ->
    prop:string ->
    lo:Soqm_storage.Sorted_index.bound ->
    hi:Soqm_storage.Sorted_index.bound ->
    Oid.t list option;
}

let basic_ctx store =
  {
    store;
    probe_index = (fun ~cls:_ ~prop:_ _ -> None);
    probe_range = (fun ~cls:_ ~prop:_ ~lo:_ ~hi:_ -> None);
  }

type iter = { next : unit -> Relation.tuple option; close : unit -> unit }

let counters ctx = Object_store.counters ctx.store

let operand_value tuple = function
  | Restricted.ORef r -> (
    match List.assoc_opt r tuple with
    | Some v -> v
    | None -> error "unbound reference %S in physical plan" r)
  | Restricted.OConst v -> v
  | Restricted.OParam p -> error "unresolved specification parameter %S" p

let receiver_value tuple = function
  | Restricted.RRef r -> operand_value tuple (Restricted.ORef r)
  | Restricted.RClass c -> Value.Cls c

let eval_cmp c x y =
  try Runtime.eval_binop (Restricted.cmp_to_binop c) x y
  with Runtime.Error msg -> error "%s" msg

let eval_op op (vs : Value.t list) =
  match op, vs with
  | Restricted.OpBin b, [ x; y ] -> (
    try Runtime.eval_binop b x y with Runtime.Error msg -> error "%s" msg)
  | Restricted.OpNot, [ Value.Bool b ] -> Value.Bool (not b)
  | Restricted.OpNot, [ v ] -> error "NOT on non-boolean %s" (Value.to_string v)
  | Restricted.OpIdent, [ v ] -> v
  | Restricted.OpTuple labels, vs when List.length labels = List.length vs ->
    Value.tuple (List.map2 (fun l v -> (l, v)) labels vs)
  | Restricted.OpSet, vs -> Value.set vs
  | _ -> error "operator arity mismatch in physical plan"

let of_list tuples =
  let remaining = ref tuples in
  {
    next =
      (fun () ->
        match !remaining with
        | [] -> None
        | t :: rest ->
          remaining := rest;
          Some t);
    close = (fun () -> remaining := []);
  }

let drain iter =
  let rec go acc =
    match iter.next () with None -> List.rev acc | Some t -> go (t :: acc)
  in
  let tuples = go [] in
  iter.close ();
  tuples

(* One output tuple per input tuple, extended with [a := f tuple]. *)
let extend ctx a f input =
  {
    next =
      (fun () ->
        match input.next () with
        | None -> None
        | Some tuple ->
          Counters.charge_tuple (counters ctx);
          Some (Relation.Tuple.insert (a, f tuple) tuple));
    close = input.close;
  }

(* One output tuple per member of the set [f tuple]. *)
let unnest ctx a f input =
  let pending = ref [] in
  let rec next () =
    match !pending with
    | t :: rest ->
      pending := rest;
      Counters.charge_tuple (counters ctx);
      Some t
    | [] -> (
      match input.next () with
      | None -> None
      | Some tuple ->
        (match f tuple with
        | Value.Set members ->
          pending :=
            List.map (fun v -> Relation.Tuple.insert (a, v) tuple) members
        | Value.Null -> pending := []
        | v -> error "flat operator produced non-set %s" (Value.to_string v));
        next ())
  in
  { next; close = input.close }

let memoized1 f =
  let memo = Hashtbl.create 64 in
  fun key ->
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v = f key in
      Hashtbl.replace memo key v;
      v

let rec open_plan ctx (plan : Plan.t) : iter =
  match plan with
  | Plan.Unit -> of_list [ [] ]
  | Plan.FullScan (a, cls) ->
    let oids =
      try Object_store.extent ctx.store cls
      with Invalid_argument msg -> error "%s" msg
    in
    let tuples =
      List.map
        (fun o ->
          Counters.charge_object_fetch (counters ctx);
          [ (a, Value.Obj o) ])
        oids
    in
    of_list tuples
  | Plan.IndexScan (a, cls, prop, key) -> (
    match ctx.probe_index ~cls ~prop key with
    | Some oids -> of_list (List.map (fun o -> [ (a, Value.Obj o) ]) oids)
    | None -> error "no index on %s.%s" cls prop)
  | Plan.RangeScan (a, cls, prop, lo, hi) -> (
    match ctx.probe_range ~cls ~prop ~lo ~hi with
    | Some oids -> of_list (List.map (fun o -> [ (a, Value.Obj o) ]) oids)
    | None -> error "no ordered index on %s.%s" cls prop)
  | Plan.MethodScan (a, cls, m, args) -> (
    match
      try Runtime.invoke ctx.store (Value.Cls cls) m args
      with Runtime.Error msg -> error "%s" msg
    with
    | Value.Set members -> of_list (List.map (fun v -> [ (a, v) ]) members)
    | v -> error "method scan %s->%s produced non-set %s" cls m (Value.to_string v))
  | Plan.Filter (c, x, y, input) ->
    let input = open_plan ctx input in
    let rec next () =
      match input.next () with
      | None -> None
      | Some tuple ->
        if Value.truthy (eval_cmp c (operand_value tuple x) (operand_value tuple y))
        then (
          Counters.charge_tuple (counters ctx);
          Some tuple)
        else next ()
    in
    { next; close = input.close }
  | Plan.NestedLoop (pred, left, right) ->
    let left = open_plan ctx left in
    let right_tuples = lazy (drain (open_plan ctx right)) in
    let current = ref None in
    let remaining = ref [] in
    let rec next () =
      match !remaining with
      | rt :: rest -> (
        remaining := rest;
        match !current with
        | None -> next ()
        | Some lt ->
          let merged = Relation.Tuple.merge_sorted lt rt in
          let keep =
            match pred with
            | None -> true
            | Some (c, a1, a2) ->
              Value.truthy
                (eval_cmp c
                   (operand_value merged (Restricted.ORef a1))
                   (operand_value merged (Restricted.ORef a2)))
          in
          if keep then (
            Counters.charge_tuple (counters ctx);
            Some merged)
          else next ())
      | [] -> (
        match left.next () with
        | None -> None
        | Some lt ->
          current := Some lt;
          remaining := Lazy.force right_tuples;
          next ())
    in
    { next; close = left.close }
  | Plan.HashJoin (a1, a2, left, right) ->
    let left = open_plan ctx left in
    let table =
      lazy
        (let tbl = Hashtbl.create 256 in
         List.iter
           (fun rt ->
             let key = operand_value rt (Restricted.ORef a2) in
             Hashtbl.add tbl key rt)
           (drain (open_plan ctx right));
         tbl)
    in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | t :: rest ->
        pending := rest;
        Counters.charge_tuple (counters ctx);
        Some t
      | [] -> (
        match left.next () with
        | None -> None
        | Some lt ->
          let key = operand_value lt (Restricted.ORef a1) in
          pending :=
            List.map
              (fun rt -> Relation.Tuple.merge_sorted lt rt)
              (Hashtbl.find_all (Lazy.force table) key);
          next ())
    in
    { next; close = left.close }
  | Plan.NaturalJoin (left_plan, right_plan) ->
    let left = open_plan ctx left_plan in
    let shared =
      List.filter
        (fun r -> List.mem r (Plan.refs right_plan))
        (Plan.refs left_plan)
    in
    let table =
      lazy
        (let tbl = Relation.KeyTbl.create 256 in
         List.iter
           (fun rt ->
             let key = Relation.Tuple.key shared rt in
             match Relation.KeyTbl.find_opt tbl key with
             | Some prev -> Relation.KeyTbl.replace tbl key (rt :: prev)
             | None -> Relation.KeyTbl.add tbl key [ rt ])
           (drain (open_plan ctx right_plan));
         tbl)
    in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | t :: rest ->
        pending := rest;
        Counters.charge_tuple (counters ctx);
        Some t
      | [] -> (
        match left.next () with
        | None -> None
        | Some lt ->
          let key = Relation.Tuple.key shared lt in
          let matches =
            Option.value ~default:[]
              (Relation.KeyTbl.find_opt (Lazy.force table) key)
          in
          pending :=
            List.map (fun rt -> Relation.Tuple.merge_sorted lt rt) matches;
          next ())
    in
    { next; close = left.close }
  | Plan.Union (left, right) ->
    let left = open_plan ctx left in
    let right = lazy (open_plan ctx right) in
    let on_right = ref false in
    let rec next () =
      if !on_right then (Lazy.force right).next ()
      else
        match left.next () with
        | Some t -> Some t
        | None ->
          on_right := true;
          next ()
    in
    {
      next;
      close =
        (fun () ->
          left.close ();
          if Lazy.is_val right then (Lazy.force right).close ());
    }
  | Plan.Diff (left, right) ->
    let left = open_plan ctx left in
    let excluded =
      lazy
        (let tbl = Relation.Tbl.create 256 in
         List.iter
           (fun t -> Relation.Tbl.replace tbl t ())
           (drain (open_plan ctx right));
         tbl)
    in
    let rec next () =
      match left.next () with
      | None -> None
      | Some t ->
        if Relation.Tbl.mem (Lazy.force excluded) t then next () else Some t
    in
    { next; close = left.close }
  | Plan.MapProp (a, p, a1, input) ->
    let access =
      memoized1 (fun recv ->
          try Runtime.access ctx.store recv p
          with Runtime.Error msg -> error "%s" msg)
    in
    extend ctx a
      (fun tuple -> access (operand_value tuple (Restricted.ORef a1)))
      (open_plan ctx input)
  | Plan.MapMeth (a, m, recv, args, input) ->
    let call =
      memoized1 (fun (rv, avs) ->
          try Runtime.invoke ctx.store rv m avs
          with Runtime.Error msg -> error "%s" msg)
    in
    extend ctx a
      (fun tuple ->
        call (receiver_value tuple recv, List.map (operand_value tuple) args))
      (open_plan ctx input)
  | Plan.FlatProp (a, p, a1, input) ->
    let access =
      memoized1 (fun recv ->
          try Runtime.access ctx.store recv p
          with Runtime.Error msg -> error "%s" msg)
    in
    unnest ctx a
      (fun tuple -> access (operand_value tuple (Restricted.ORef a1)))
      (open_plan ctx input)
  | Plan.FlatMeth (a, m, recv, args, input) ->
    let call =
      memoized1 (fun (rv, avs) ->
          try Runtime.invoke ctx.store rv m avs
          with Runtime.Error msg -> error "%s" msg)
    in
    unnest ctx a
      (fun tuple ->
        call (receiver_value tuple recv, List.map (operand_value tuple) args))
      (open_plan ctx input)
  | Plan.MapOp (a, op, xs, input) ->
    extend ctx a
      (fun tuple -> eval_op op (List.map (operand_value tuple) xs))
      (open_plan ctx input)
  | Plan.FlatOp (a, op, xs, input) ->
    unnest ctx a
      (fun tuple -> eval_op op (List.map (operand_value tuple) xs))
      (open_plan ctx input)
  | Plan.Project (rs, input) ->
    let rs = List.sort_uniq String.compare rs in
    let input = open_plan ctx input in
    let seen = Relation.Tbl.create 256 in
    let rec next () =
      match input.next () with
      | None -> None
      | Some tuple ->
        let projected = List.filter (fun (r, _) -> List.mem r rs) tuple in
        if Relation.Tbl.mem seen projected then next ()
        else (
          Relation.Tbl.replace seen projected ();
          Counters.charge_tuple (counters ctx);
          Some projected)
    in
    { next; close = input.close }

let run ctx plan =
  let iter = open_plan ctx plan in
  let tuples = drain iter in
  Relation.make ~refs:(Plan.refs plan) tuples
