(** A reusable pool of worker domains for morsel-driven execution.

    Hand-rolled on stdlib [Domain]/[Mutex]/[Condition] (domainslib is
    not a dependency).  A pool owns up to [max_helpers] helper domains,
    {e spawned lazily}: creating a pool spawns nothing, and a run with
    [jobs = 1] executes inline on the caller — no domain is ever created
    for serial work.  Helper domains park on a condition variable
    between runs, so the spawn cost is paid once per process, not once
    per query.

    Scoped parallelism only: {!run} hands the same closure to [jobs]
    workers (the caller is worker [0], helpers are [1 .. jobs-1]) and
    returns when {e all} of them have finished.  Workers coordinate
    through the task itself — typically an [Atomic.t] morsel cursor —
    so the pool never needs a work queue.  The join is a full
    synchronization point: anything written by the workers
    happens-before the caller's next instruction, which is what lets
    multi-phase kernels (partition, then build, then probe) publish
    plain hash tables between phases. *)

type t

val create : ?max_helpers:int -> unit -> t
(** A pool with no helper domains yet.  [max_helpers] (default 126,
    just under the runtime's domain limit) caps how many are ever
    spawned; runs requesting more workers than [1 + max_helpers]
    still complete, with the excess indices never handed out. *)

val run : t -> jobs:int -> (int -> unit) -> unit
(** [run t ~jobs f] executes [f 0], ..., [f (jobs-1)] concurrently and
    waits for all of them.  [f 0] runs on the calling domain; helpers
    are spawned on first need and reused afterwards.  [jobs <= 1] runs
    [f 0] inline without touching the pool machinery.  A re-entrant
    [run] from inside a task degrades to inline sequential execution
    (the pool is not a scheduler).  If any worker raises, the first
    exception is re-raised on the caller — after every worker has
    finished, so no task outlives the call. *)

val helpers : t -> int
(** Helper domains spawned by this pool so far (0 until the first
    [run ~jobs:(>= 2)]). *)

val shutdown : t -> unit
(** Stop and join all helper domains.  Subsequent {!run}s respawn
    helpers on demand; calling it twice is harmless. *)

val global : unit -> t
(** The process-wide pool shared by every executor; created on first
    use, shut down via [at_exit]. *)

val total_spawned : unit -> int
(** Helper domains spawned process-wide across all pools — monotone,
    never decremented on shutdown.  Lets tests assert that serial
    ([jobs = 1]) execution spawns no domain at all. *)
