(** Execution of physical plans.

    Two executors share one context:

    {ul
    {- {!Interpreted} is the original Volcano path — one canonical tuple
       per [next ()], references resolved by name on every row.  It is
       the executable specification the batch path is property-tested
       against.}
    {- The default path ({!run}) first {!compile}s the plan — resolving
       every reference, join key and projection to an integer slot
       against per-operator {!Relation.Layout.t}s — then evaluates
       blocks of rows ([Value.t array array], up to {!block_size} rows
       per block) with tight array kernels: no assoc lists and no name
       lookups inside the per-row loops.}}

    Per-operator memo tables cache method invocations and property
    accesses keyed by receiver and argument {e values} in both paths:
    safe because optimized queries are side-effect free, and exactly
    what makes tuple-independent operator chains (a class-method call
    with constant arguments and the accesses hanging off it) cost one
    evaluation per execution instead of one per tuple. *)

open Soqm_vml
open Soqm_algebra

exception Error of string

type ctx = {
  store : Object_store.t;
  probe_index : cls:string -> prop:string -> Value.t -> Oid.t list option;
      (** probe a value index if one exists on [cls.prop]; implementations
          charge the index-probe counter themselves *)
  probe_range :
    cls:string ->
    prop:string ->
    lo:Soqm_storage.Sorted_index.bound ->
    hi:Soqm_storage.Sorted_index.bound ->
    Oid.t list option;
      (** probe an ordered index if one exists on [cls.prop] *)
  scan_cost : cls:string -> (int * int) option;
      (** drive the class extent's traffic through an attached paged disk
          store ([Soqm_disk]), returning [(pages touched, bytes decoded)]
          — whole pages for a row-slotted class, chunk metadata for a
          columnar one — or [None] when the database is purely
          in-memory.  Full scans call this so disk-backed databases
          charge real buffer-pool traffic (and the [pages=] / [bytes=]
          columns of [explain --analyze]). *)
}

val basic_ctx : Object_store.t -> ctx
(** A context with no indexes (index and range scans fail to resolve). *)

type iter = {
  next : unit -> Relation.tuple option;
  close : unit -> unit;
}

(** The tuple-at-a-time reference executor. *)
module Interpreted : sig
  val open_plan : ctx -> Plan.t -> iter
  (** Open the plan's root iterator.  @raise Error on dynamic failures. *)

  val run : ctx -> Plan.t -> Relation.t
  (** Exhaust the plan and canonicalize the result into a relation. *)
end

(** {1 Batch execution} *)

val block_size : int
(** Maximum rows per emitted block (128) — sized so a block's backing
    array stays within the minor-heap allocation limit
    ([Max_young_wosize]); see DESIGN.md §9. *)

type biter = {
  next_block : unit -> Relation.Row.t array option;
      (** at most {!block_size} rows, laid out per the operator's
          compiled layout; rows may be shared with input blocks *)
  close_blocks : unit -> unit;
}

type node_stats = {
  node_rows : int array;
  node_blocks : int array;
  node_morsels : int array;
      (** input morsels processed by the parallel path (0 under serial
          execution) *)
  node_partitions : int array;
      (** build-side partitions used by the parallel hash join / diff
          kernels (0 under serial execution and for non-partitioned
          operators; 1 when a tiny build side collapsed to a single
          shared table) *)
  node_pages : int array;
      (** disk pages touched by full scans of this node ([ctx.scan_cost]);
          0 for in-memory databases *)
  node_bytes : int array;
      (** bytes the storage layer decoded for full scans of this node —
          whole pages for row-slotted classes, chunk metadata for
          columnar ones; 0 for in-memory databases *)
}
(** Per-operator actuals, indexed by [Plan.compiled] node id — the
    [explain --analyze] sink. *)

val make_stats : Plan.compiled -> node_stats

val compile : ?fuse:bool -> ctx -> Plan.t -> Plan.compiled
(** {!Plan.compile} (chain fusion on by default; [~fuse:false] keeps
    the one-operator-per-node tree), with compile failures charged to
    the slot-miss counter and re-raised as {!Error} (same messages the
    interpreted executor raises at run time). *)

val open_compiled : ?stats:node_stats -> ctx -> Plan.compiled -> biter
(** Open the root block iterator.  Every emitted block charges the
    block counter; with [stats] it also accumulates per-node actual
    rows/blocks.  @raise Error on dynamic failures. *)

val drain_blocks : biter -> Relation.Row.t array list

(** {1 Morsel-driven parallel execution}

    With [jobs >= 2], operators evaluate bottom-up on the {!Pool.global}
    domain pool: each operator materializes its output as one row array,
    workers claim {!morsel_size}-row morsels of the input through an
    atomic cursor, and per-morsel results are concatenated in morsel
    order — so the parallel output is row-for-row identical to the
    serial executor's (DESIGN.md §10).  Equi- and natural joins (and
    diff) hash-partition their build side and build one table per
    partition in parallel, preserving build-input match order. *)

val morsel_size : int
(** Rows per work unit claimed by a parallel worker (1024 = 8 serial
    blocks); see DESIGN.md §10 for the sizing rationale. *)

val eval_parallel :
  ?stats:node_stats -> ctx -> jobs:int -> Plan.compiled -> Relation.Row.t array
(** Evaluate with [jobs] workers and return the root's materialized
    rows (in deterministic, serial-identical order — exposed for the
    determinism tests and benchmarks).  @raise Error on dynamic
    failures, re-raised on the caller after all workers join. *)

val effective_jobs : ctx -> int -> Plan.compiled -> int
(** The worker count the default executor would actually use: [jobs]
    capped at [Domain.recommended_domain_count ()], collapsing to 1
    when every leaf extent of the plan fits inside a single
    {!morsel_size} morsel (one work unit per operator — domain
    handoff with no overlap). *)

val run_compiled :
  ?stats:node_stats ->
  ?jobs:int ->
  ?clamp:bool ->
  ctx ->
  Plan.compiled ->
  Relation.t
(** Exhaust the compiled plan and canonicalize the result.  [jobs]
    (default 1) selects the executor: 1 streams blocks exactly as
    before — no pool, no domain spawns — while [>= 2] runs the
    morsel-parallel path.  Unless [clamp:false], [jobs] first passes
    through {!effective_jobs}, so over-subscribed hosts and sub-morsel
    inputs silently take the serial path; pass [~clamp:false] to force
    the parallel internals regardless (determinism tests, benchmarks on
    small fixtures). *)

val run : ?jobs:int -> ?clamp:bool -> ctx -> Plan.t -> Relation.t
(** [compile] + [run_compiled] — the default executor. *)
