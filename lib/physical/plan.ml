open Soqm_vml
open Soqm_algebra
open Soqm_storage

type t =
  | Unit
  | FullScan of string * string
  | IndexScan of string * string * string * Value.t
  | RangeScan of
      string * string * string * Sorted_index.bound * Sorted_index.bound
  | MethodScan of string * string * string * Value.t list
  | Filter of Restricted.cmp * Restricted.operand * Restricted.operand * t
  | NestedLoop of (Restricted.cmp * string * string) option * t * t
  | HashJoin of string * string * t * t
  | NaturalJoin of t * t
  | Union of t * t
  | Diff of t * t
  | MapProp of string * string * string * t
  | MapMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | FlatProp of string * string * string * t
  | FlatMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | MapOp of string * Restricted.opname * Restricted.operand list * t
  | FlatOp of string * Restricted.opname * Restricted.operand list * t
  | Project of string list * t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let union_sorted a b = List.sort_uniq String.compare (a @ b)

let rec refs = function
  | Unit -> []
  | FullScan (a, _) | IndexScan (a, _, _, _) | RangeScan (a, _, _, _, _)
  | MethodScan (a, _, _, _) ->
    [ a ]
  | Filter (_, _, _, p) -> refs p
  | NestedLoop (_, p1, p2) | HashJoin (_, _, p1, p2) | NaturalJoin (p1, p2) ->
    union_sorted (refs p1) (refs p2)
  | Union (p1, _) | Diff (p1, _) -> refs p1
  | MapProp (a, _, _, p)
  | MapMeth (a, _, _, _, p)
  | FlatProp (a, _, _, p)
  | FlatMeth (a, _, _, _, p)
  | MapOp (a, _, _, p)
  | FlatOp (a, _, _, p) ->
    union_sorted [ a ] (refs p)
  | Project (rs, _) -> List.sort_uniq String.compare rs

let inputs = function
  | Unit | FullScan _ | IndexScan _ | RangeScan _ | MethodScan _ -> []
  | Filter (_, _, _, p)
  | MapProp (_, _, _, p)
  | MapMeth (_, _, _, _, p)
  | FlatProp (_, _, _, p)
  | FlatMeth (_, _, _, _, p)
  | MapOp (_, _, _, p)
  | FlatOp (_, _, _, p)
  | Project (_, p) ->
    [ p ]
  | NestedLoop (_, p1, p2)
  | HashJoin (_, _, p1, p2)
  | NaturalJoin (p1, p2)
  | Union (p1, p2)
  | Diff (p1, p2) ->
    [ p1; p2 ]

let rec size t = 1 + List.fold_left (fun n i -> n + size i) 0 (inputs t)

let rec default_implementation (r : Restricted.t) : t =
  match r with
  | Restricted.Unit -> Unit
  | Restricted.Get (a, c) -> FullScan (a, c)
  | Restricted.MethodSource (a, cls, m, args) ->
    let consts =
      List.map
        (function
          | Restricted.OConst v -> v
          | Restricted.ORef _ | Restricted.OParam _ ->
            invalid_arg "default_implementation: non-constant source argument")
        args
    in
    MethodScan (a, cls, m, consts)
  | Restricted.NaturalJoin (s1, s2) ->
    NaturalJoin (default_implementation s1, default_implementation s2)
  | Restricted.Union (s1, s2) ->
    Union (default_implementation s1, default_implementation s2)
  | Restricted.Diff (s1, s2) ->
    Diff (default_implementation s1, default_implementation s2)
  | Restricted.Cross (s1, s2) ->
    NestedLoop (None, default_implementation s1, default_implementation s2)
  | Restricted.SelectCmp (c, x, y, s) -> Filter (c, x, y, default_implementation s)
  | Restricted.JoinCmp (Restricted.CEq, a1, a2, s1, s2) ->
    HashJoin (a1, a2, default_implementation s1, default_implementation s2)
  | Restricted.JoinCmp (c, a1, a2, s1, s2) ->
    NestedLoop (Some (c, a1, a2), default_implementation s1, default_implementation s2)
  | Restricted.MapProperty (a, p, a1, s) -> MapProp (a, p, a1, default_implementation s)
  | Restricted.MapMethod (a, m, recv, args, s) ->
    MapMeth (a, m, recv, args, default_implementation s)
  | Restricted.FlatProperty (a, p, a1, s) ->
    FlatProp (a, p, a1, default_implementation s)
  | Restricted.FlatMethod (a, m, recv, args, s) ->
    FlatMeth (a, m, recv, args, default_implementation s)
  | Restricted.MapOperator (a, op, xs, s) -> MapOp (a, op, xs, default_implementation s)
  | Restricted.FlatOperator (a, op, xs, s) -> FlatOp (a, op, xs, default_implementation s)
  | Restricted.Project (rs, s) -> Project (rs, default_implementation s)

(* ------------------------------------------------------------------ *)
(* Slot compilation                                                    *)
(* ------------------------------------------------------------------ *)

exception Compile_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

type slot_operand = SSlot of int | SConst of Value.t
type slot_receiver = RSlot of int | RClassObj of string

(* Fused select/map/project chains: a maximal run of filters and 1:1
   maps (optionally topped by a projection) collapses into one kernel
   that evaluates all steps over a register buffer in a single pass per
   input row — no intermediate blocks, no intermediate row allocation.
   Registers 0..fin_width-1 are the input row's slots in order; each map
   step appends one register.  Operands inside steps index registers,
   not layout slots. *)
type fstep =
  | FFilter of Restricted.cmp * slot_operand * slot_operand
  | FProp of int * string * int  (* target register, property, receiver *)
  | FMeth of int * string * slot_receiver * slot_operand array
  | FOp of int * Restricted.opname * slot_operand array

type fused = {
  fsteps : fstep array;  (* bottom-to-top: execution order *)
  fin_width : int;  (* input row width = initial register count *)
  fregs : int;  (* total registers = fin_width + number of map steps *)
  fout : int array;  (* registers copied to the output row, in order *)
  fdedup : bool;  (* a projection tops the chain: set semantics *)
  fkeyed : bool;
      (* the projection provably emits distinct rows (it keeps a key of
         the chain's input — see {!row_key}), so the dedup table is
         skippable *)
}

type compiled = {
  cid : int;
  layout : Relation.Layout.t;
  source : t;
  cop : cop;
}

and cop =
  | CUnit
  | CFullScan of string
  | CIndexScan of string * string * Value.t
  | CRangeScan of string * string * Sorted_index.bound * Sorted_index.bound
  | CMethodScan of string * string * Value.t list
  | CFilter of Restricted.cmp * slot_operand * slot_operand * compiled
  | CNestedLoop of (Restricted.cmp * int * int) option * int array * compiled * compiled
  | CHashJoin of int * int * int array * compiled * compiled
  | CNaturalJoin of int array * int array * int array * compiled * compiled
  | CUnion of compiled * compiled
  | CDiff of compiled * compiled
  | CMapProp of int * string * int * compiled
  | CMapMeth of int * string * slot_receiver * slot_operand array * compiled
  | CFlatProp of int * string * int * compiled
  | CFlatMeth of int * string * slot_receiver * slot_operand array * compiled
  | CMapOp of int * Restricted.opname * slot_operand array * compiled
  | CFlatOp of int * Restricted.opname * slot_operand array * compiled
  | CProject of int array * compiled
  | CFused of fused * compiled

let compile_tree (plan : t) : compiled =
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let ref_slot layout r =
    match Relation.Layout.slot layout r with
    | Some i -> i
    | None -> fail "unbound reference %S in physical plan" r
  in
  let operand layout = function
    | Restricted.ORef r -> SSlot (ref_slot layout r)
    | Restricted.OConst v -> SConst v
    | Restricted.OParam p -> fail "unresolved specification parameter %S" p
  in
  let insertion layout a =
    match Relation.Layout.slot layout a with
    | Some _ -> fail "duplicate target reference %S in physical plan" a
    | None -> Relation.Layout.insertion layout a
  in
  let node source layout cop = { cid = fresh (); layout; source; cop } in
  let rec go (p : t) : compiled =
    (* preorder ids: a node's cid is smaller than its descendants' *)
    match p with
    | Unit -> node p (Relation.Layout.of_refs []) CUnit
    | FullScan (a, cls) -> node p (Relation.Layout.of_refs [ a ]) (CFullScan cls)
    | IndexScan (a, cls, prop, key) ->
      node p (Relation.Layout.of_refs [ a ]) (CIndexScan (cls, prop, key))
    | RangeScan (a, cls, prop, lo, hi) ->
      node p (Relation.Layout.of_refs [ a ]) (CRangeScan (cls, prop, lo, hi))
    | MethodScan (a, cls, m, args) ->
      node p (Relation.Layout.of_refs [ a ]) (CMethodScan (cls, m, args))
    | Filter (c, x, y, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      { n with layout = ci.layout; cop = CFilter (c, operand ci.layout x, operand ci.layout y, ci) }
    | NestedLoop (pred, left, right) ->
      let n = node p [||] CUnit in
      let cl = go left and cr = go right in
      let layout, merge = Relation.Layout.merge_plan ~left:cl.layout ~right:cr.layout in
      let pred =
        Option.map
          (fun (c, a1, a2) -> (c, ref_slot layout a1, ref_slot layout a2))
          pred
      in
      { n with layout; cop = CNestedLoop (pred, merge, cl, cr) }
    | HashJoin (a1, a2, left, right) ->
      let n = node p [||] CUnit in
      let cl = go left and cr = go right in
      let layout, merge = Relation.Layout.merge_plan ~left:cl.layout ~right:cr.layout in
      { n with layout;
        cop = CHashJoin (ref_slot cl.layout a1, ref_slot cr.layout a2, merge, cl, cr) }
    | NaturalJoin (left, right) ->
      let n = node p [||] CUnit in
      let cl = go left and cr = go right in
      let shared =
        List.filter
          (fun r -> Option.is_some (Relation.Layout.slot cr.layout r))
          (Relation.Layout.names cl.layout)
      in
      let layout, merge = Relation.Layout.merge_plan ~left:cl.layout ~right:cr.layout in
      let key l = Array.of_list (List.map (ref_slot l) shared) in
      { n with layout;
        cop = CNaturalJoin (key cl.layout, key cr.layout, merge, cl, cr) }
    | Union (left, right) ->
      let n = node p [||] CUnit in
      let cl = go left and cr = go right in
      if not (Relation.Layout.equal cl.layout cr.layout) then
        fail "union arguments have differing references";
      { n with layout = cl.layout; cop = CUnion (cl, cr) }
    | Diff (left, right) ->
      let n = node p [||] CUnit in
      let cl = go left and cr = go right in
      if not (Relation.Layout.equal cl.layout cr.layout) then
        fail "diff arguments have differing references";
      { n with layout = cl.layout; cop = CDiff (cl, cr) }
    | MapProp (a, prop, a1, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let recv = ref_slot ci.layout a1 in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CMapProp (at, prop, recv, ci) }
    | FlatProp (a, prop, a1, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let recv = ref_slot ci.layout a1 in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CFlatProp (at, prop, recv, ci) }
    | MapMeth (a, m, recv, args, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let recv =
        match recv with
        | Restricted.RRef r -> RSlot (ref_slot ci.layout r)
        | Restricted.RClass c -> RClassObj c
      in
      let args = Array.of_list (List.map (operand ci.layout) args) in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CMapMeth (at, m, recv, args, ci) }
    | FlatMeth (a, m, recv, args, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let recv =
        match recv with
        | Restricted.RRef r -> RSlot (ref_slot ci.layout r)
        | Restricted.RClass c -> RClassObj c
      in
      let args = Array.of_list (List.map (operand ci.layout) args) in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CFlatMeth (at, m, recv, args, ci) }
    | MapOp (a, op, xs, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let xs = Array.of_list (List.map (operand ci.layout) xs) in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CMapOp (at, op, xs, ci) }
    | FlatOp (a, op, xs, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let xs = Array.of_list (List.map (operand ci.layout) xs) in
      let layout, at = insertion ci.layout a in
      { n with layout; cop = CFlatOp (at, op, xs, ci) }
    | Project (rs, input) ->
      let n = node p [||] CUnit in
      let ci = go input in
      let rs = List.sort_uniq String.compare rs in
      (match
         List.find_opt
           (fun r -> Option.is_none (Relation.Layout.slot ci.layout r))
           rs
       with
      | Some r -> fail "projection reference %S not present" r
      | None -> ());
      let layout, srcs = Relation.Layout.projection ~src:ci.layout rs in
      { n with layout; cop = CProject (srcs, ci) }
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Distinctness: keys of compiled nodes                                *)
(* ------------------------------------------------------------------ *)

module Slot_set = Set.Make (Int)

(* A key of a node: a set of output slots whose combined values differ
   between any two rows the node emits.  [None] means no key is known —
   the analysis is sound, not complete.  The payoff is the projection
   fast path: a projection that keeps a whole key of its input provably
   emits distinct rows, so its dedup hash table (one lookup + one row
   materialization per input row) is dead weight.

   Per node: scans of extents and index access paths enumerate each
   object once, so the binding slot alone is a key; method scans may
   return anything.  Filters and 1:1 maps keep input rows apart.  A
   join emits each matching (left, right) pair once, so the union of
   both sides' keys identifies the pair — provided every key slot
   survives the merge.  Flattens and unions duplicate freely.  A
   projection's own output is distinct by set semantics (enforced by
   dedup or proved by this analysis), hence a key of itself. *)
let rec row_key (c : compiled) : Slot_set.t option =
  let shift_for_insert at k =
    Slot_set.map (fun s -> if s >= at then s + 1 else s) k
  in
  let all_slots n = Slot_set.of_list (List.init n Fun.id) in
  (* remap key slots of one join side through the signed merge plan
     ([j >= 0] copies left slot [j], [j < 0] copies right slot
     [-j - 1]); [None] when a key slot was projected away *)
  let remap merge src_of k acc =
    Slot_set.fold
      (fun s acc ->
        Option.bind acc (fun acc ->
            let pos = ref None in
            Array.iteri
              (fun j m -> if !pos = None && m = src_of s then pos := Some j)
              merge;
            Option.map (fun j -> Slot_set.add j acc) !pos))
      k (Some acc)
  in
  match c.cop with
  | CUnit -> Some Slot_set.empty
  | CFullScan _ | CIndexScan _ | CRangeScan _ -> Some (Slot_set.singleton 0)
  | CMethodScan _ -> None
  | CFilter (_, _, _, i) -> row_key i
  | CMapProp (at, _, _, i) | CMapMeth (at, _, _, _, i) | CMapOp (at, _, _, i)
    ->
    Option.map (shift_for_insert at) (row_key i)
  | CFlatProp _ | CFlatMeth _ | CFlatOp _ -> None
  | CNestedLoop (_, merge, l, r)
  | CHashJoin (_, _, merge, l, r)
  | CNaturalJoin (_, _, merge, l, r) -> (
    match (row_key l, row_key r) with
    | Some kl, Some kr ->
      Option.bind
        (remap merge Fun.id kl Slot_set.empty)
        (remap merge (fun s -> -s - 1) kr)
    | _ -> None)
  | CUnion _ -> None
  | CDiff (l, _) -> row_key l
  | CProject (srcs, _) -> Some (all_slots (Array.length srcs))
  | CFused (f, i) ->
    if f.fdedup && not f.fkeyed then Some (all_slots (Array.length f.fout))
    else
      (* 1:1 steps only; input slot [s] is register [s], output slot [j]
         copies register [fout.(j)] *)
      Option.bind (row_key i) (fun k ->
          Slot_set.fold
            (fun s acc ->
              Option.bind acc (fun acc ->
                  let pos = ref None in
                  Array.iteri
                    (fun j m -> if !pos = None && m = s then pos := Some j)
                    f.fout;
                  Option.map (fun j -> Slot_set.add j acc) !pos))
            k (Some Slot_set.empty))

(* Does projecting [srcs] out of [input] provably keep rows distinct? *)
let keyed_projection srcs (input : compiled) =
  match row_key input with
  | None -> false
  | Some k -> Slot_set.for_all (fun s -> Array.exists (Int.equal s) srcs) k

(* ------------------------------------------------------------------ *)
(* Kernel fusion                                                       *)
(* ------------------------------------------------------------------ *)

(* Filters and the 1:1 maps fuse; flat (set-valued) operators change
   cardinality mid-chain and stay standalone. *)
let fusable_link c =
  match c.cop with
  | CFilter (_, _, _, i)
  | CMapProp (_, _, _, i)
  | CMapMeth (_, _, _, _, i)
  | CMapOp (_, _, _, i) ->
    Some i
  | _ -> None

(* The maximal fusable chain hanging off [c]: its operators top-to-bottom
   and the first non-fusable node feeding them. *)
let split_chain c =
  let rec go acc c =
    match fusable_link c with Some i -> go (c :: acc) i | None -> (List.rev acc, c)
  in
  go [] c

(* Translate a chain into register steps.  [reg_of] maps the current
   layout's slots to registers: it starts as the identity over the input
   row and tracks every map step's sorted-position insert, so operand
   slots resolved against intermediate layouts land on the right
   register no matter where later inserts shifted them. *)
let build_fused ?project ops input =
  let fin_width = Relation.Layout.width input.layout in
  let reg_of = ref (Array.init fin_width Fun.id) in
  let nregs = ref fin_width in
  let xop = function
    | SSlot i -> SSlot !reg_of.(i)
    | SConst _ as c -> c
  in
  let extend at =
    let r = !nregs in
    incr nregs;
    let prev = !reg_of in
    let w = Array.length prev in
    let next = Array.make (w + 1) r in
    Array.blit prev 0 next 0 at;
    Array.blit prev at next (at + 1) (w - at);
    reg_of := next;
    r
  in
  let steps =
    List.map
      (fun op ->
        match op.cop with
        | CFilter (cmp, x, y, _) -> FFilter (cmp, xop x, xop y)
        | CMapProp (at, p, recv, _) ->
          let recv = !reg_of.(recv) in
          FProp (extend at, p, recv)
        | CMapMeth (at, m, recv, args, _) ->
          let recv =
            match recv with
            | RSlot i -> RSlot !reg_of.(i)
            | RClassObj _ as r -> r
          in
          let args = Array.map xop args in
          FMeth (extend at, m, recv, args)
        | CMapOp (at, op, xs, _) ->
          let xs = Array.map xop xs in
          FOp (extend at, op, xs)
        | _ -> assert false)
      (List.rev ops)
  in
  let fout =
    match project with
    | Some srcs -> Array.map (fun s -> !reg_of.(s)) srcs
    | None -> Array.copy !reg_of
  in
  (* input slot [s] seeds register [s], so a key of the input node reads
     directly as a register set: the projection is keyed when every key
     register survives into the copy-out *)
  let keyed =
    Option.is_some project
    &&
    match row_key input with
    | None -> false
    | Some k -> Slot_set.for_all (fun s -> Array.exists (Int.equal s) fout) k
  in
  {
    fsteps = Array.of_list steps;
    fin_width;
    fregs = !nregs;
    fout;
    fdedup = Option.is_some project;
    fkeyed = keyed;
  }

(* A node starts a fused kernel when it tops a chain worth collapsing:
   a projection over at least one fusable operator (the copy-out and
   dedup ride along for free), or a chain of at least two fusable
   operators on its own. *)
let fuse_candidate c =
  match c.cop with
  | CProject (srcs, i) ->
    let ops, input = split_chain i in
    if ops = [] then None else Some (Some srcs, ops, input)
  | _ -> (
    match fusable_link c with
    | None -> None
    | Some _ -> (
      match split_chain c with
      | ([] | [ _ ]), _ -> None
      | ops, input -> Some (None, ops, input)))

(* Rewrite chains bottom-up and renumber the surviving nodes in preorder
   (cids must stay dense for the per-node statistics arrays).  A plan
   with no chain is returned untouched, original numbering included. *)
let fuse_chains root =
  let changed = ref false in
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let rec go c =
    match fuse_candidate c with
    | Some (project, ops, input) ->
      changed := true;
      let cid = fresh () in
      let fi = go input in
      { c with cid; cop = CFused (build_fused ?project ops input, fi) }
    | None ->
      let cid = fresh () in
      let cop =
        match c.cop with
        | CUnit | CFullScan _ | CIndexScan _ | CRangeScan _ | CMethodScan _ ->
          c.cop
        | CFilter (cmp, x, y, i) -> CFilter (cmp, x, y, go i)
        | CNestedLoop (p, m, l, r) ->
          let l = go l in
          let r = go r in
          CNestedLoop (p, m, l, r)
        | CHashJoin (a, b, m, l, r) ->
          let l = go l in
          let r = go r in
          CHashJoin (a, b, m, l, r)
        | CNaturalJoin (kl, kr, m, l, r) ->
          let l = go l in
          let r = go r in
          CNaturalJoin (kl, kr, m, l, r)
        | CUnion (l, r) ->
          let l = go l in
          let r = go r in
          CUnion (l, r)
        | CDiff (l, r) ->
          let l = go l in
          let r = go r in
          CDiff (l, r)
        | CMapProp (at, p, recv, i) -> CMapProp (at, p, recv, go i)
        | CMapMeth (at, m, recv, args, i) -> CMapMeth (at, m, recv, args, go i)
        | CFlatProp (at, p, recv, i) -> CFlatProp (at, p, recv, go i)
        | CFlatMeth (at, m, recv, args, i) -> CFlatMeth (at, m, recv, args, go i)
        | CMapOp (at, op, xs, i) -> CMapOp (at, op, xs, go i)
        | CFlatOp (at, op, xs, i) -> CFlatOp (at, op, xs, go i)
        | CProject (srcs, i) -> CProject (srcs, go i)
        | CFused (f, i) -> CFused (f, go i)
      in
      { c with cid; cop }
  in
  let rewritten = go root in
  if !changed then rewritten else root

let compile ?(fuse = true) plan =
  let c = compile_tree plan in
  if fuse then fuse_chains c else c

let compiled_inputs c =
  match c.cop with
  | CUnit | CFullScan _ | CIndexScan _ | CRangeScan _ | CMethodScan _ -> []
  | CFilter (_, _, _, i)
  | CMapProp (_, _, _, i)
  | CMapMeth (_, _, _, _, i)
  | CFlatProp (_, _, _, i)
  | CFlatMeth (_, _, _, _, i)
  | CMapOp (_, _, _, i)
  | CFlatOp (_, _, _, i)
  | CProject (_, i)
  | CFused (_, i) ->
    [ i ]
  | CNestedLoop (_, _, l, r)
  | CHashJoin (_, _, _, l, r)
  | CNaturalJoin (_, _, _, l, r)
  | CUnion (l, r)
  | CDiff (l, r) ->
    [ l; r ]

let rec node_count c =
  1 + List.fold_left (fun n i -> n + node_count i) 0 (compiled_inputs c)

let pp_values ppf vs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Value.pp ppf vs

let cmp_name c =
  Format.asprintf "%a" Expr.pp_binop (Restricted.cmp_to_binop c)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "unit"
  | FullScan (a, c) -> Format.fprintf ppf "full_scan<%s, %s>" a c
  | IndexScan (a, c, p, k) ->
    Format.fprintf ppf "index_scan<%s, %s.%s = %a>" a c p Value.pp k
  | RangeScan (a, c, p, lo, hi) ->
    let pp_bound what ppf = function
      | Sorted_index.Unbounded -> Format.fprintf ppf "%s unbounded" what
      | Sorted_index.Inclusive v -> Format.fprintf ppf "%s>= %a" what Value.pp v
      | Sorted_index.Exclusive v -> Format.fprintf ppf "%s> %a" what Value.pp v
    in
    Format.fprintf ppf "range_scan<%s, %s.%s, %a, %a>" a c p (pp_bound "") lo
      (pp_bound "") hi
  | MethodScan (a, c, m, args) ->
    Format.fprintf ppf "method_scan<%s, %s->%s(%a)>" a c m pp_values args
  | Filter (c, x, y, p) ->
    Format.fprintf ppf "@[<v2>filter<%a %s %a>(@,%a)@]" Restricted.pp_operand x
      (cmp_name c) Restricted.pp_operand y pp p
  | NestedLoop (None, p1, p2) ->
    Format.fprintf ppf "@[<v2>nested_loop<true>(@,%a,@,%a)@]" pp p1 pp p2
  | NestedLoop (Some (c, a1, a2), p1, p2) ->
    Format.fprintf ppf "@[<v2>nested_loop<%s %s %s>(@,%a,@,%a)@]" a1 (cmp_name c)
      a2 pp p1 pp p2
  | HashJoin (a1, a2, p1, p2) ->
    Format.fprintf ppf "@[<v2>hash_join<%s == %s>(@,%a,@,%a)@]" a1 a2 pp p1 pp p2
  | NaturalJoin (p1, p2) ->
    Format.fprintf ppf "@[<v2>natural_join_hash(@,%a,@,%a)@]" pp p1 pp p2
  | Union (p1, p2) -> Format.fprintf ppf "@[<v2>union(@,%a,@,%a)@]" pp p1 pp p2
  | Diff (p1, p2) -> Format.fprintf ppf "@[<v2>diff(@,%a,@,%a)@]" pp p1 pp p2
  | MapProp (a, p, a1, i) ->
    Format.fprintf ppf "@[<v2>map_property<%s, %s, %s>(@,%a)@]" a p a1 pp i
  | MapMeth (a, m, r, xs, i) ->
    Format.fprintf ppf "@[<v2>map_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      Restricted.pp_receiver r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | FlatProp (a, p, a1, i) ->
    Format.fprintf ppf "@[<v2>flat_property<%s, %s, %s>(@,%a)@]" a p a1 pp i
  | FlatMeth (a, m, r, xs, i) ->
    Format.fprintf ppf "@[<v2>flat_method<%s, %s, %a, <%a>>(@,%a)@]" a m
      Restricted.pp_receiver r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | MapOp (a, op, xs, i) ->
    Format.fprintf ppf "@[<v2>map_operator<%s, %s, %a>(@,%a)@]" a
      (Format.asprintf "%a"
         (fun ppf () ->
           Format.pp_print_string ppf
             (match op with
             | Restricted.OpBin b -> Format.asprintf "%a" Expr.pp_binop b
             | Restricted.OpNot -> "NOT"
             | Restricted.OpIdent -> "ident"
             | Restricted.OpTuple ls -> "tuple[" ^ String.concat "," ls ^ "]"
             | Restricted.OpSet -> "set"))
         ())
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | FlatOp (a, op, xs, i) ->
    Format.fprintf ppf "@[<v2>flat_operator<%s, %s, %a>(@,%a)@]" a
      (match op with
      | Restricted.OpBin b -> Format.asprintf "%a" Expr.pp_binop b
      | Restricted.OpNot -> "NOT"
      | Restricted.OpIdent -> "ident"
      | Restricted.OpTuple ls -> "tuple[" ^ String.concat "," ls ^ "]"
      | Restricted.OpSet -> "set")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Restricted.pp_operand)
      xs pp i
  | Project (rs, i) ->
    Format.fprintf ppf "@[<v2>project<%s>(@,%a)@]" (String.concat ", " rs) pp i

let to_string t = Format.asprintf "%a" pp t

let opname_label = function
  | Restricted.OpBin b -> Format.asprintf "%a" Expr.pp_binop b
  | Restricted.OpNot -> "NOT"
  | Restricted.OpIdent -> "ident"
  | Restricted.OpTuple ls -> "tuple[" ^ String.concat "," ls ^ "]"
  | Restricted.OpSet -> "set"

let slot_operand_label = function
  | SSlot i -> Printf.sprintf "@%d" i
  | SConst v -> Value.to_string v

let slot_receiver_label = function
  | RSlot i -> Printf.sprintf "@%d" i
  | RClassObj c -> "class " ^ c

let slots_label a =
  String.concat ", "
    (Array.to_list (Array.map (Printf.sprintf "@%d") a))

(* [@n] inside a fused label names a register, not a layout slot;
   registers 0..fin_width-1 coincide with the input row's slots. *)
let fstep_label = function
  | FFilter (cmp, x, y) ->
    Printf.sprintf "%s %s %s" (slot_operand_label x) (cmp_name cmp)
      (slot_operand_label y)
  | FProp (r, p, recv) -> Printf.sprintf "@%d := @%d.%s" r recv p
  | FMeth (r, m, recv, args) ->
    Printf.sprintf "@%d := %s->%s(%s)" r (slot_receiver_label recv) m
      (String.concat ", " (Array.to_list (Array.map slot_operand_label args)))
  | FOp (r, op, xs) ->
    Printf.sprintf "@%d := %s(%s)" r (opname_label op)
      (String.concat ", " (Array.to_list (Array.map slot_operand_label xs)))

let fused_count c =
  match c.cop with
  | CFused (f, _) -> Array.length f.fsteps + if f.fdedup then 1 else 0
  | _ -> 0

let compiled_label c =
  let bound_label what = function
    | Sorted_index.Unbounded -> what ^ " unbounded"
    | Sorted_index.Inclusive v -> Printf.sprintf "%s>= %s" what (Value.to_string v)
    | Sorted_index.Exclusive v -> Printf.sprintf "%s> %s" what (Value.to_string v)
  in
  match c.cop with
  | CUnit -> "unit"
  | CFullScan cls -> Printf.sprintf "full_scan<%s>" cls
  | CIndexScan (cls, p, k) ->
    Printf.sprintf "index_scan<%s.%s = %s>" cls p (Value.to_string k)
  | CRangeScan (cls, p, lo, hi) ->
    Printf.sprintf "range_scan<%s.%s, %s, %s>" cls p (bound_label "" lo)
      (bound_label "" hi)
  | CMethodScan (cls, m, args) ->
    Printf.sprintf "method_scan<%s->%s(%s)>" cls m
      (String.concat ", " (List.map Value.to_string args))
  | CFilter (cmp, x, y, _) ->
    Printf.sprintf "filter<%s %s %s>" (slot_operand_label x) (cmp_name cmp)
      (slot_operand_label y)
  | CNestedLoop (None, _, _, _) -> "nested_loop<true>"
  | CNestedLoop (Some (cmp, i, j), _, _, _) ->
    Printf.sprintf "nested_loop<@%d %s @%d>" i (cmp_name cmp) j
  | CHashJoin (i, j, _, _, _) ->
    Printf.sprintf "hash_join<left@%d == right@%d>" i j
  | CNaturalJoin (kl, kr, _, _, _) ->
    Printf.sprintf "natural_join_hash<%s>"
      (String.concat ", "
         (List.map2
            (fun i j -> Printf.sprintf "left@%d = right@%d" i j)
            (Array.to_list kl) (Array.to_list kr)))
  | CUnion _ -> "union"
  | CDiff _ -> "diff"
  | CMapProp (at, p, recv, _) ->
    Printf.sprintf "map_property<@%d := @%d.%s>" at recv p
  | CFlatProp (at, p, recv, _) ->
    Printf.sprintf "flat_property<@%d := @%d.%s>" at recv p
  | CMapMeth (at, m, recv, args, _) ->
    Printf.sprintf "map_method<@%d := %s->%s(%s)>" at (slot_receiver_label recv)
      m
      (String.concat ", " (Array.to_list (Array.map slot_operand_label args)))
  | CFlatMeth (at, m, recv, args, _) ->
    Printf.sprintf "flat_method<@%d := %s->%s(%s)>" at
      (slot_receiver_label recv) m
      (String.concat ", " (Array.to_list (Array.map slot_operand_label args)))
  | CMapOp (at, op, xs, _) ->
    Printf.sprintf "map_operator<@%d := %s(%s)>" at (opname_label op)
      (String.concat ", " (Array.to_list (Array.map slot_operand_label xs)))
  | CFlatOp (at, op, xs, _) ->
    Printf.sprintf "flat_operator<@%d := %s(%s)>" at (opname_label op)
      (String.concat ", " (Array.to_list (Array.map slot_operand_label xs)))
  | CProject (srcs, _) -> Printf.sprintf "project<%s>" (slots_label srcs)
  | CFused (f, _) ->
    Printf.sprintf "fused<%s%s>"
      (String.concat "; "
         (List.map fstep_label (Array.to_list f.fsteps)))
      (if f.fdedup then
         Printf.sprintf "; project%s %s"
           (if f.fkeyed then " keyed" else "")
           (slots_label f.fout)
       else "")

let pp_compiled ?(annot = fun (_ : compiled) -> "") ppf root =
  let rec go indent c =
    let a = annot c in
    Format.fprintf ppf "%s#%d %s  [%s]%s" indent c.cid (compiled_label c)
      (String.concat ", " (Relation.Layout.names c.layout))
      (if a = "" then "" else "  " ^ a);
    List.iter
      (fun i ->
        Format.fprintf ppf "@,";
        go (indent ^ "  ") i)
      (compiled_inputs c)
  in
  Format.fprintf ppf "@[<v>";
  go "" root;
  Format.fprintf ppf "@]"

let compiled_to_string ?annot c = Format.asprintf "%a" (pp_compiled ?annot) c
