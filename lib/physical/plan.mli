(** The physical algebra: query evaluation plans.

    In the Volcano architecture the physical algebra's operators are
    concrete algorithms with cost functions; implementation rules map
    logical (restricted-algebra) expressions onto them.  Methods appear
    here as {e operators} (Section 3.2): a set-returning class method
    like [Paragraph→retrieve_by_string] is an access path
    ({!const:MethodScan}), which is exactly how the equivalence-between-
    queries-and-method-calls knowledge of Section 4.2 becomes executable. *)

open Soqm_vml
open Soqm_algebra

type t =
  | Unit  (** the one-empty-tuple relation; hosts constant chains *)
  | FullScan of string * string  (** [ref, class] — extent scan *)
  | IndexScan of string * string * string * Value.t
      (** [ref, class, prop, key] — probe a value index *)
  | RangeScan of
      string * string * string * Soqm_storage.Sorted_index.bound
      * Soqm_storage.Sorted_index.bound
      (** [ref, class, prop, lo, hi] — probe an ordered index *)
  | MethodScan of string * string * string * Value.t list
      (** [ref, class, own-method, const args] — a set-returning OWNTYPE
          method as access path *)
  | Filter of Restricted.cmp * Restricted.operand * Restricted.operand * t
  | NestedLoop of (Restricted.cmp * string * string) option * t * t
      (** theta/cross join; the inner input is materialized once *)
  | HashJoin of string * string * t * t
      (** equi-join [left_ref == right_ref] *)
  | NaturalJoin of t * t
      (** hash join on all shared references; with equal reference sets
          this is set intersection — the INTERSECTION of plan PQ *)
  | Union of t * t
  | Diff of t * t
  | MapProp of string * string * string * t
  | MapMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | FlatProp of string * string * string * t
  | FlatMeth of string * string * Restricted.receiver * Restricted.operand list * t
  | MapOp of string * Restricted.opname * Restricted.operand list * t
  | FlatOp of string * Restricted.opname * Restricted.operand list * t
  | Project of string list * t

val equal : t -> t -> bool
val compare : t -> t -> int

val refs : t -> string list
(** Output references (sorted). *)

val inputs : t -> t list
val size : t -> int

val default_implementation : Restricted.t -> t
(** The always-available structural implementation: every logical
    operator mapped to its direct physical counterpart ([get] → full
    scan, [select] → filter, [join] → nested loop, ...).  Semantic
    implementation rules compete against this baseline in the
    optimizer's branch-and-bound. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Slot compilation}

    Before execution a plan is {e compiled}: every reference, projection
    list and join key is resolved once, against the producing operator's
    output {!Relation.Layout.t}, to an integer slot.  The batch executor
    then runs over rows ([Value.t array]) with integer indexing only —
    no name lookups, no assoc lists in the per-row loops. *)

exception Compile_error of string
(** Raised by {!compile} when a reference cannot be resolved against its
    input layout (same message the interpreted executor produces at run
    time) or when a specification parameter survived into the plan. *)

type slot_operand =
  | SSlot of int  (** read the operand from this slot of the input row *)
  | SConst of Value.t

type slot_receiver =
  | RSlot of int
  | RClassObj of string  (** class object receiver, resolved at open *)

(** {2 Fused kernels}

    A maximal chain of filters and 1:1 maps (optionally topped by a
    projection) collapses into one {!constructor:CFused} kernel that runs
    all steps over a {e register} buffer in a single pass per input row —
    the intermediate operators' blocks and row allocations disappear.
    Registers [0..fin_width-1] are the input row's slots in order; every
    map step appends one register, and step operands index registers
    (the compiler rewrote each operator's layout slots through the
    intermediate inserts). *)

type fstep =
  | FFilter of Restricted.cmp * slot_operand * slot_operand
      (** short-circuits the remaining steps when the row fails *)
  | FProp of int * string * int
      (** [target register := (register).property] *)
  | FMeth of int * string * slot_receiver * slot_operand array
  | FOp of int * Restricted.opname * slot_operand array

type fused = {
  fsteps : fstep array;  (** execution (bottom-to-top chain) order *)
  fin_width : int;  (** input row width = initial register count *)
  fregs : int;  (** total registers: [fin_width] + number of map steps *)
  fout : int array;  (** registers copied to the output row, in order *)
  fdedup : bool;
      (** a projection topped the chain: keep first occurrences only *)
  fkeyed : bool;
      (** the projection keeps a whole key of the chain's input
          ({!row_key}), so its rows are provably distinct and the
          executors skip the dedup table *)
}

type compiled = {
  cid : int;
      (** preorder node id, dense in [0, node_count); the key used by
          per-node actual-row statistics ([explain --analyze]) *)
  layout : Relation.Layout.t;  (** output layout of this operator *)
  source : t;  (** the physical node this was compiled from *)
  cop : cop;
}

and cop =
  | CUnit
  | CFullScan of string
  | CIndexScan of string * string * Value.t
  | CRangeScan of
      string * string * Soqm_storage.Sorted_index.bound
      * Soqm_storage.Sorted_index.bound
  | CMethodScan of string * string * Value.t list
  | CFilter of Restricted.cmp * slot_operand * slot_operand * compiled
  | CNestedLoop of
      (Restricted.cmp * int * int) option * int array * compiled * compiled
      (** predicate slots index the {e merged} row; the [int array] is the
          signed merge plan (see {!Relation.Layout.merge_plan}) *)
  | CHashJoin of int * int * int array * compiled * compiled
      (** build/probe key slots index the left/right input rows *)
  | CNaturalJoin of int array * int array * int array * compiled * compiled
      (** shared-key slots on the left/right inputs, then the merge plan *)
  | CUnion of compiled * compiled
  | CDiff of compiled * compiled
  | CMapProp of int * string * int * compiled
      (** [target slot in output row, property, receiver slot in input row] *)
  | CMapMeth of int * string * slot_receiver * slot_operand array * compiled
  | CFlatProp of int * string * int * compiled
  | CFlatMeth of int * string * slot_receiver * slot_operand array * compiled
  | CMapOp of int * Restricted.opname * slot_operand array * compiled
  | CFlatOp of int * Restricted.opname * slot_operand array * compiled
  | CProject of int array * compiled
      (** per output slot, the input slot to copy *)
  | CFused of fused * compiled
      (** one-pass select/map/project kernel over the input's rows *)

val compile : ?fuse:bool -> t -> compiled
(** Resolve every name to a slot and precompute all copy plans; then
    (unless [~fuse:false]) collapse every maximal filter/map chain of
    length two or more — counting a topping projection — into a
    {!constructor:CFused} kernel and renumber the nodes in preorder.
    Flat (set-valued) operators break chains: they change cardinality.
    A plan without such chains is returned untouched.
    @raise Compile_error on unbound references, parameter operands,
    duplicate map targets, or union/diff layout mismatch. *)

val compiled_inputs : compiled -> compiled list
val node_count : compiled -> int

module Slot_set : Set.S with type elt = int

val row_key : compiled -> Slot_set.t option
(** A {e key} of the node: output slots whose combined values differ
    between any two emitted rows, or [None] when no key is provable.
    Scans of extents and index access paths key on their binding slot;
    filters and 1:1 maps preserve keys; joins combine both sides' keys
    (each matching pair is emitted once); a projection's output is a key
    of itself by set semantics.  Flattens, unions and method scans drop
    to [None].  Sound, not complete. *)

val keyed_projection : int array -> compiled -> bool
(** [keyed_projection srcs input]: does projecting slots [srcs] out of
    [input] provably keep rows distinct — i.e. do the kept slots cover a
    {!row_key} of [input]?  When true the projection executors skip
    their dedup hash table (the projection fast path; DESIGN.md §9). *)

val fused_count : compiled -> int
(** Steps fused into this node (counting a topping projection);
    0 for anything but {!constructor:CFused} — the [fused=] column of
    [explain --analyze]. *)

val pp_compiled :
  ?annot:(compiled -> string) -> Format.formatter -> compiled -> unit
(** Indented operator tree with per-node layouts; [annot] appends e.g.
    estimated/actual row counts per node (the [explain] subcommand). *)

val compiled_to_string : ?annot:(compiled -> string) -> compiled -> string
