(** The optimization demonstrator (Section 7): "graphically illustrates
    how the VQL query optimizer works ... by tracing the single steps of
    the optimization process, i.e. by visualizing a query expression
    throughout the optimization process."  Here the visualization is a
    textual rendering of every derivation step of the winning variant,
    with the rule applied, plus the chosen plan and its estimated cost —
    usable as a debugging tool for examining the impact of
    schema-specific equivalences. *)

val pp_result :
  ?provenance:(string -> string option) ->
  Format.formatter ->
  Search.result ->
  unit
(** Full trace: each derivation step with its rule name and term, then
    the chosen logical variant, physical plan and estimated cost.
    [provenance] maps a rule name to its saturation derivation trace;
    rules it knows print as ["rule=<name> [derived: <trace>]"], so
    explain output distinguishes declared from derived knowledge
    (default: everything declared). *)

val pp_summary : Format.formatter -> Search.result -> unit
(** One-line summary: variants explored, derivation length, cost. *)

val render : ?provenance:(string -> string option) -> Search.result -> string
