open Soqm_algebra
open Soqm_physical

let pp_rule provenance ppf rule =
  match provenance rule with
  | Some trace -> Format.fprintf ppf "rule=%s [derived: %s]" rule trace
  | None -> Format.pp_print_string ppf rule

let pp_result ?(provenance = fun _ -> None) ppf (r : Search.result) =
  Format.fprintf ppf "@[<v>=== optimization trace ===@,";
  List.iteri
    (fun i (s : Search.step) ->
      Format.fprintf ppf "@,-- step %d: %a --@,%a@," i (pp_rule provenance)
        s.Search.rule Restricted.pp s.Search.term)
    r.Search.derivation;
  Format.fprintf ppf "@,-- chosen logical expression (%d variants explored%s) --@,%a@,"
    r.Search.variants_explored
    (if r.Search.truncated then ", truncated" else "")
    Restricted.pp r.Search.best_logical;
  Format.fprintf ppf "@,-- chosen physical plan (estimated cost %.1f) --@,%a@,"
    r.Search.best_cost Plan.pp r.Search.best_plan;
  if r.Search.rule_applications <> [] then
    Format.fprintf ppf "@,-- accepted rewrites per rule --@,%a@,"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
         (fun ppf (rule, n) ->
           Format.fprintf ppf "%6d  %a" n (pp_rule provenance) rule))
      r.Search.rule_applications;
  Format.fprintf ppf "@]"

let pp_summary ppf (r : Search.result) =
  Format.fprintf ppf
    "%d variant(s) explored, %d derivation step(s), estimated cost %.1f"
    r.Search.variants_explored
    (List.length r.Search.derivation - 1)
    r.Search.best_cost

let render ?provenance r = Format.asprintf "%a" (pp_result ?provenance) r
