(* The seed's list-based relational operators, retained verbatim as the
   asymptotically-dumb reference: the property tests check the hash-based
   operators in [Relation] against these, and bench/scaling.ml uses them
   as the baseline for the evaluator-overhead comparison.  Nothing in the
   engine proper should call this module. *)

open Soqm_vml

let natural_join r1 r2 =
  let shared =
    List.filter (fun r -> List.mem r (Relation.refs r2)) (Relation.refs r1)
  in
  let out_refs =
    List.sort_uniq String.compare (Relation.refs r1 @ Relation.refs r2)
  in
  let joins t1 t2 =
    List.for_all
      (fun r -> Value.equal (Relation.field t1 r) (Relation.field t2 r))
      shared
  in
  let merge t1 t2 =
    let extra = List.filter (fun (r, _) -> not (List.mem_assoc r t1)) t2 in
    Relation.tuple_make (t1 @ extra)
  in
  Relation.make ~refs:out_refs
    (List.concat_map
       (fun t1 ->
         List.filter_map
           (fun t2 -> if joins t1 t2 then Some (merge t1 t2) else None)
           (Relation.tuples r2))
       (Relation.tuples r1))

let union r1 r2 =
  if not (Relation.same_refs r1 r2) then
    invalid_arg "Naive.union: arguments have differing references";
  Relation.make ~refs:(Relation.refs r1)
    (Relation.tuples r1 @ Relation.tuples r2)

let diff r1 r2 =
  if not (Relation.same_refs r1 r2) then
    invalid_arg "Naive.diff: arguments have differing references";
  let in_r2 tup = List.exists (fun t2 -> t2 = tup) (Relation.tuples r2) in
  Relation.make ~refs:(Relation.refs r1)
    (List.filter (fun tup -> not (in_r2 tup)) (Relation.tuples r1))

let join pred r1 r2 =
  let out_refs =
    List.sort_uniq String.compare (Relation.refs r1 @ Relation.refs r2)
  in
  if
    List.length out_refs
    <> List.length (Relation.refs r1) + List.length (Relation.refs r2)
  then invalid_arg "Naive.join: arguments share references";
  Relation.make ~refs:out_refs
    (List.concat_map
       (fun t1 ->
         List.filter_map
           (fun t2 ->
             let merged = Relation.tuple_make (t1 @ t2) in
             if pred merged then Some merged else None)
           (Relation.tuples r2))
       (Relation.tuples r1))
