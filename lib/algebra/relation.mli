(** Relations: bulk values of type [set[tuple[domains]]].

    The query algebra of Section 4.1 manipulates complex values of type
    [{ [a1: D1, ..., an: Dn] }].  A relation here is a set of tuples over
    a fixed list of references [Ref(S) = {a1, ..., an}]; tuple components
    are unordered (we keep them sorted by reference name) and the tuple
    set is duplicate-free.

    Tuples are canonical — components sorted by name, values canonically
    constructed — so structural equality, ordering and the generic hash
    all agree, and the bulk operations below can be hash-based. *)

open Soqm_vml

type tuple = (string * Value.t) list
(** One tuple, sorted by reference name. *)

type t

(** Canonical tuples as a hashable, ordered type.  [hash] is consistent
    with [equal]; both agree with structural equality on canonical
    tuples. *)
module Tuple : sig
  type t = tuple

  val make : (string * Value.t) list -> t
  (** Sort components by reference name. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int

  val names : t -> string list
  (** Component names, in tuple (sorted) order. *)

  val key : string list -> t -> Value.t list
  (** [key refs t] projects the values of [refs] out of [t], in the
      given order — the hash key used by joins.
      @raise Not_found when a reference is absent. *)

  val insert : string * Value.t -> t -> t
  (** Insert one field into a sorted tuple (O(|t|), no re-sort). *)

  val merge_sorted : t -> t -> t
  (** Merge two sorted tuples; on shared names the left component wins
      (only merge tuples that agree on their shared references). *)

  val find_opt : string -> t -> Value.t option
  (** Sorted-order lookup; stops early once the name cannot appear.
      The shared replacement for the O(width) [List.assoc_opt] helpers
      that used to be duplicated between the evaluators. *)

  val project : string list -> t -> t
  (** Project onto a {e sorted} reference list in one merge-style pass.
      Names absent from the tuple are silently dropped. *)
end

module Tbl : Hashtbl.S with type key = tuple
(** Hash tables keyed by canonical tuples. *)

module KeyTbl : Hashtbl.S with type key = Value.t list
(** Hash tables keyed by join keys (projected value lists). *)

(** Layouts: the compile-time side of slot-resolved execution.

    A layout fixes, once per operator, where each attribute of that
    operator's output lives: the sorted, duplicate-free array of
    attribute names.  Name resolution ([slot]) happens against the
    layout when a plan is {e compiled}; at execution time tuples are
    plain [Value.t array]s ("rows") indexed by slot, and the helpers
    below precompute the copy plans (projection, join merge, column
    insertion) that the batch kernels replay with integer indexing
    only.  Layout order deliberately coincides with canonical tuple
    order, so converting a row to a tuple never re-sorts. *)
module Layout : sig
  type t = string array
  (** Sorted, duplicate-free attribute names; index = slot. *)

  val of_refs : string list -> t
  val width : t -> int
  val names : t -> string list
  val equal : t -> t -> bool

  val slot : t -> string -> int option
  (** Binary search; [None] when the attribute is absent. *)

  val slot_exn : t -> string -> int
  (** @raise Invalid_argument when the attribute is absent. *)

  val union : t -> t -> t

  val row_of_tuple : t -> tuple -> Value.t array
  (** Strip names off a canonical tuple whose names are exactly the
      layout.  @raise Invalid_argument on mismatch. *)

  val tuple_of_row : t -> Value.t array -> tuple
  (** Reattach names; the result is canonical by construction. *)

  val projection : src:t -> string list -> t * int array
  (** Output layout plus, per output slot, the source slot to copy.
      @raise Invalid_argument when a name is absent from [src]. *)

  val merge_plan : left:t -> right:t -> t * int array
  (** Join-output layout plus a signed copy plan: entry [i >= 0] copies
      [left.(i)], entry [i < 0] copies [right.(-i - 1)].  Shared names
      copy from the left, matching {!Tuple.merge_sorted}. *)

  val insertion : t -> string -> t * int
  (** Layout with one attribute added, and the slot it lands in.
      @raise Invalid_argument when already present. *)
end

module Row : sig
  type t = Value.t array

  val equal : t -> t -> bool
  val hash : t -> int
end
(** Rows (slot-indexed tuples) as a hashable type; [equal] is
    positionwise {!Value.equal} and the generic [hash] is consistent
    with it on canonical values — same contract as {!Tuple}. *)

module RowTbl : Hashtbl.S with type key = Value.t array
(** Hash tables keyed by rows (join builds, dedup, diff sets). *)

val make : refs:string list -> tuple list -> t
(** Canonicalize (sort refs, sort tuple components, deduplicate tuples)
    and validate that every tuple binds exactly the declared references.
    Already-canonical tuples are validated in one O(|refs|) comparison
    against the sorted reference list, without re-sorting.
    @raise Invalid_argument on mismatched tuples. *)

val empty : refs:string list -> t

val refs : t -> string list
(** [Ref(S)], sorted. *)

val tuples : t -> tuple list
val cardinality : t -> int

val field : tuple -> string -> Value.t
(** @raise Not_found when the reference is absent. *)

val tuple_make : (string * Value.t) list -> tuple

val same_refs : t -> t -> bool
val equal : t -> t -> bool
(** Set equality over identical reference lists. *)

val of_values : string -> Value.t list -> t
(** [of_values a vs] is the unary relation [{ [a: v] | v in vs }]. *)

val column : t -> string -> Value.t list
(** Values of one reference, in tuple order (duplicates preserved). *)

val index : t -> string list -> tuple list KeyTbl.t
(** [index t refs] buckets the tuples of [t] by their projection onto
    [refs] — the build side of a hash join.  With [refs = []] every tuple
    lands in the single bucket keyed [[]]. *)

val mem_set : t -> tuple -> bool
(** [mem_set t] builds a hash set over the tuples of [t] once and returns
    O(1) membership (partial application shares the table). *)

val natural_join : t -> t -> t
(** Hash natural join: index the smaller side on the shared references,
    probe with the larger.  With no shared references this is the
    Cartesian product; with all references shared it is intersection. *)

val union : t -> t -> t
(** Hash-deduplicating set union.
    @raise Invalid_argument on differing reference lists. *)

val diff : t -> t -> t
(** Set difference via hash-set membership.
    @raise Invalid_argument on differing reference lists. *)

val pp : Format.formatter -> t -> unit
