open Soqm_vml

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let eval_expr store tuple e =
  let binding r = Relation.Tuple.find_opt r tuple in
  try Runtime.eval (Runtime.env ~binding store) e
  with Runtime.Error msg -> error "expression %s: %s" (Expr.to_string e) msg

(* The evaluator charges the store's counters so experiments can report
   tuples actually touched by the reference interpreter alongside the
   deterministic method-call costs. *)
let counters store = Object_store.counters store

(* A theta join whose condition is a top-level equality with one side
   ranging over each input evaluates as a hash join: [Some (e1, e2)] with
   [e1] over [refs1] and [e2] over [refs2]. *)
let equi_join_split cond refs1 refs2 =
  match (cond : Expr.t) with
  | Expr.Binop (Expr.Eq, a, b) ->
    let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
    let ra = Expr.refs a and rb = Expr.refs b in
    if subset ra refs1 && subset rb refs2 then Some (a, b)
    else if subset ra refs2 && subset rb refs1 then Some (b, a)
    else None
  | _ -> None

let rec run store (t : General.t) : Relation.t =
  let refs_of t = try General.refs t with Invalid_argument msg -> error "%s" msg in
  match t with
  | Unit -> Relation.make ~refs:[] [ [] ]
  | Get (a, cls) ->
    let oids =
      try Object_store.extent store cls
      with Invalid_argument msg -> error "%s" msg
    in
    Relation.of_values a (List.map (fun o -> Value.Obj o) oids)
  | MethodSource (a, e) -> (
    match eval_expr store [] e with
    | Value.Set vs -> Relation.of_values a vs
    | v -> error "source expression produced non-set %s" (Value.to_string v))
  | Select (cond, s) ->
    let input = run store s in
    let keep tup = Value.truthy (eval_expr store tup cond) in
    let out =
      Relation.make ~refs:(Relation.refs input)
        (List.filter keep (Relation.tuples input))
    in
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | NaturalJoin (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    let out = Relation.natural_join r1 r2 in
    Counters.charge_index_probes (counters store)
      (max (Relation.cardinality r1) (Relation.cardinality r2));
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | Union (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    if not (Relation.same_refs r1 r2) then
      error "union arguments have differing references";
    let out = Relation.union r1 r2 in
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | Diff (s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    if not (Relation.same_refs r1 r2) then
      error "diff arguments have differing references";
    let out = Relation.diff r1 r2 in
    Counters.charge_index_probes (counters store) (Relation.cardinality r1);
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | Join (cond, s1, s2) ->
    let r1 = run store s1 and r2 = run store s2 in
    let refs1 = Relation.refs r1 and refs2 = Relation.refs r2 in
    let out_refs = List.sort_uniq String.compare (refs1 @ refs2) in
    if List.length out_refs <> List.length refs1 + List.length refs2 then
      error "join arguments share references";
    let tuples =
      match equi_join_split cond refs1 refs2 with
      | _ when Relation.cardinality r1 = 0 || Relation.cardinality r2 = 0 ->
        (* no pairs: the seed evaluator never touched the condition here *)
        []
      | Some (e1, e2) ->
        (* hash equi-join: one key evaluation per input tuple instead of
           one condition evaluation per tuple pair.  Null keys never
           match, mirroring [eval_binop Eq]'s null semantics. *)
        let idx = Relation.KeyTbl.create (max 16 (Relation.cardinality r2)) in
        List.iter
          (fun t2 ->
            match eval_expr store t2 e2 with
            | Value.Null -> ()
            | k -> (
              match Relation.KeyTbl.find_opt idx [ k ] with
              | Some prev -> Relation.KeyTbl.replace idx [ k ] (t2 :: prev)
              | None -> Relation.KeyTbl.add idx [ k ] [ t2 ]))
          (Relation.tuples r2);
        Counters.charge_index_probes (counters store) (Relation.cardinality r1);
        List.concat_map
          (fun t1 ->
            match eval_expr store t1 e1 with
            | Value.Null -> []
            | k -> (
              match Relation.KeyTbl.find_opt idx [ k ] with
              | None -> []
              | Some matches ->
                List.map (fun t2 -> Relation.Tuple.merge_sorted t1 t2) matches))
          (Relation.tuples r1)
      | None ->
        let always_true =
          match cond with Expr.Const (Value.Bool true) -> true | _ -> false
        in
        List.concat_map
          (fun t1 ->
            List.filter_map
              (fun t2 ->
                let merged = Relation.Tuple.merge_sorted t1 t2 in
                if always_true || Value.truthy (eval_expr store merged cond)
                then Some merged
                else None)
              (Relation.tuples r2))
          (Relation.tuples r1)
    in
    let out = Relation.make ~refs:out_refs tuples in
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | Map (a, e, s) ->
    let input = run store s in
    if List.mem a (Relation.refs input) then
      error "map target reference %S already present" a;
    Counters.charge_tuples (counters store) (Relation.cardinality input);
    Relation.make ~refs:(a :: Relation.refs input)
      (List.map
         (fun tup ->
           Relation.Tuple.insert (a, eval_expr store tup e) tup)
         (Relation.tuples input))
  | Flat (a, e, s) ->
    let input = run store s in
    if List.mem a (Relation.refs input) then
      error "flat target reference %S already present" a;
    let out =
      Relation.make ~refs:(a :: Relation.refs input)
        (List.concat_map
           (fun tup ->
             match eval_expr store tup e with
             | Value.Set vs ->
               List.map (fun v -> Relation.Tuple.insert (a, v) tup) vs
             | Value.Null -> []
             | v ->
               error "flat expression produced non-set %s" (Value.to_string v))
           (Relation.tuples input))
    in
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
  | Project (rs, s) ->
    let input = run store s in
    let rs = List.sort_uniq String.compare rs in
    List.iter
      (fun r ->
        if not (List.mem r (Relation.refs input)) then
          error "projection reference %S not present" r)
      rs;
    ignore (refs_of t);
    let out =
      Relation.make ~refs:rs
        (List.map (fun tup -> Relation.Tuple.project rs tup) (Relation.tuples input))
    in
    Counters.charge_tuples (counters store) (Relation.cardinality out);
    out
