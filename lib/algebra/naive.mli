(** The seed's O(n*m) list-based relational operators, retained as the
    reference the hash-based {!Relation} operators are tested and
    benchmarked against.  Semantically identical to their hash-based
    counterparts; never used by the engine itself. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Nested list scans over the shared references. *)

val union : Relation.t -> Relation.t -> Relation.t
(** Append then sort-deduplicate.
    @raise Invalid_argument on differing reference lists. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Linear membership scan per tuple.
    @raise Invalid_argument on differing reference lists. *)

val join : (Relation.tuple -> bool) -> Relation.t -> Relation.t -> Relation.t
(** Theta join by nested loops: merge every tuple pair and keep the ones
    the predicate accepts.
    @raise Invalid_argument when the reference lists overlap. *)
