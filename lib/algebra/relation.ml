open Soqm_vml

type tuple = (string * Value.t) list

type t = { refs : string list; tuples : tuple list }

module Tuple = struct
  type t = tuple

  let make fields =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields

  let rec compare (a : t) (b : t) =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ra, va) :: a', (rb, vb) :: b' ->
      let c = String.compare ra rb in
      if c <> 0 then c
      else
        let c = Value.compare va vb in
        if c <> 0 then c else compare a' b'

  let equal a b = compare a b = 0

  (* Tuples are canonical (components sorted, values canonically
     constructed), so structural equality coincides with [equal] and the
     generic hash is consistent with it.  The deep parameters avoid
     degenerate bucketing on tuples whose first components agree. *)
  let hash (t : t) = Hashtbl.hash_param 64 256 t

  let names (t : t) = List.map fst t

  let key key_refs (t : t) = List.map (fun r -> List.assoc r t) key_refs

  (* Insert one field into an already-sorted tuple: O(|t|) instead of a
     full re-sort. *)
  let insert ((r, _) as field) (t : t) =
    let rec go = function
      | [] -> [ field ]
      | ((r', _) as f') :: rest as l ->
        if String.compare r r' <= 0 then field :: l else f' :: go rest
    in
    go t

  (* Merge two sorted tuples; on a shared name the left component wins
     (callers only merge tuples that agree on shared names). *)
  let merge_sorted (a : t) (b : t) =
    let rec go a b =
      match a, b with
      | [], b -> b
      | a, [] -> a
      | ((ra, _) as fa) :: a', ((rb, _) as fb) :: b' ->
        let c = String.compare ra rb in
        if c < 0 then fa :: go a' b
        else if c > 0 then fb :: go a b'
        else fa :: go a' b'
    in
    go a b
end

let tuple_make = Tuple.make
let compare_tuple = Tuple.compare

module Tbl = Hashtbl.Make (Tuple)

module Key = struct
  type t = Value.t list

  let equal a b = List.equal Value.equal a b
  let hash (k : t) = Hashtbl.hash_param 64 256 k
end

module KeyTbl = Hashtbl.Make (Key)

(* One O(|refs|) pass: true iff the tuple's component names are exactly
   [refs], in order.  Canonical tuples hit this without re-sorting. *)
let rec names_match refs (tup : tuple) =
  match refs, tup with
  | [], [] -> true
  | r :: refs', (n, _) :: tup' -> String.equal r n && names_match refs' tup'
  | _ -> false

let make ~refs tuples =
  let refs = List.sort_uniq String.compare refs in
  let canon tup =
    if names_match refs tup then tup
    else
      let sorted = Tuple.make tup in
      if names_match refs sorted then sorted
      else
        invalid_arg
          (Format.asprintf "Relation.make: tuple refs {%s} differ from {%s}"
             (String.concat ", " (Tuple.names sorted))
             (String.concat ", " refs))
  in
  let tuples = List.map canon tuples in
  { refs; tuples = List.sort_uniq Tuple.compare tuples }

let empty ~refs = make ~refs []
let refs t = t.refs
let tuples t = t.tuples
let cardinality t = List.length t.tuples
let field tup r = List.assoc r tup
let same_refs a b = a.refs = b.refs

let equal a b =
  same_refs a b
  && List.length a.tuples = List.length b.tuples
  && List.for_all2 (fun x y -> compare_tuple x y = 0) a.tuples b.tuples

let of_values a vs =
  make ~refs:[ a ] (List.map (fun v -> [ (a, v) ]) (List.sort_uniq Value.compare vs))

let column t r = List.map (fun tup -> field tup r) t.tuples

(* ------------------------------------------------------------------ *)
(* Hash-based bulk operations                                          *)
(* ------------------------------------------------------------------ *)

let index t key_refs =
  let tbl = KeyTbl.create (max 16 (List.length t.tuples)) in
  List.iter
    (fun tup ->
      let k = Tuple.key key_refs tup in
      match KeyTbl.find_opt tbl k with
      | Some prev -> KeyTbl.replace tbl k (tup :: prev)
      | None -> KeyTbl.add tbl k [ tup ])
    t.tuples;
  tbl

let mem_set t =
  let tbl = Tbl.create (max 16 (List.length t.tuples)) in
  List.iter (fun tup -> Tbl.replace tbl tup ()) t.tuples;
  fun tup -> Tbl.mem tbl tup

let natural_join r1 r2 =
  let shared = List.filter (fun r -> List.mem r r2.refs) r1.refs in
  let out_refs = List.sort_uniq String.compare (r1.refs @ r2.refs) in
  (* build the hash index on the smaller side, probe with the larger *)
  let build, probe =
    if cardinality r1 <= cardinality r2 then (r1, r2) else (r2, r1)
  in
  let idx = index build shared in
  make ~refs:out_refs
    (List.concat_map
       (fun tp ->
         match KeyTbl.find_opt idx (Tuple.key shared tp) with
         | None -> []
         | Some matches ->
           List.map (fun tb -> Tuple.merge_sorted tp tb) matches)
       probe.tuples)

let union a b =
  if not (same_refs a b) then
    invalid_arg "Relation.union: arguments have differing references";
  let in_a = mem_set a in
  make ~refs:a.refs
    (a.tuples @ List.filter (fun tup -> not (in_a tup)) b.tuples)

let diff a b =
  if not (same_refs a b) then
    invalid_arg "Relation.diff: arguments have differing references";
  let in_b = mem_set b in
  make ~refs:a.refs (List.filter (fun tup -> not (in_b tup)) a.tuples)

let pp ppf t =
  Format.fprintf ppf "@[<v>{%s} (%d tuples)@," (String.concat ", " t.refs)
    (cardinality t);
  List.iter
    (fun tup ->
      Format.fprintf ppf "  [%a]@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (r, v) -> Format.fprintf ppf "%s: %a" r Value.pp v))
        tup)
    t.tuples;
  Format.fprintf ppf "@]"
