open Soqm_vml

type tuple = (string * Value.t) list

type t = { refs : string list; tuples : tuple list }

module Tuple = struct
  type t = tuple

  let make fields =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields

  let rec compare (a : t) (b : t) =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | (ra, va) :: a', (rb, vb) :: b' ->
      let c = String.compare ra rb in
      if c <> 0 then c
      else
        let c = Value.compare va vb in
        if c <> 0 then c else compare a' b'

  let equal a b = compare a b = 0

  (* Tuples are canonical (components sorted, values canonically
     constructed), so structural equality coincides with [equal] and the
     generic hash is consistent with it.  The deep parameters avoid
     degenerate bucketing on tuples whose first components agree. *)
  let hash (t : t) = Hashtbl.hash_param 64 256 t

  let names (t : t) = List.map fst t

  let key key_refs (t : t) = List.map (fun r -> List.assoc r t) key_refs

  (* Sorted-order lookup: stops as soon as the walk passes where the
     name would sit, so absent names cost O(position), not O(width). *)
  let find_opt r (t : t) =
    let rec go = function
      | [] -> None
      | (r', v) :: rest ->
        let c = String.compare r r' in
        if c = 0 then Some v else if c < 0 then None else go rest
    in
    go t

  (* Project onto a sorted reference list in one merge-style pass (both
     the tuple and [rs] are sorted by name). *)
  let project rs (t : t) =
    let rec go rs t =
      match rs, t with
      | [], _ | _, [] -> []
      | r :: rs', ((r', _) as f) :: t' ->
        let c = String.compare r r' in
        if c = 0 then f :: go rs' t'
        else if c < 0 then go rs' t
        else go rs t'
    in
    go rs t

  (* Insert one field into an already-sorted tuple: O(|t|) instead of a
     full re-sort. *)
  let insert ((r, _) as field) (t : t) =
    let rec go = function
      | [] -> [ field ]
      | ((r', _) as f') :: rest as l ->
        if String.compare r r' <= 0 then field :: l else f' :: go rest
    in
    go t

  (* Merge two sorted tuples; on a shared name the left component wins
     (callers only merge tuples that agree on shared names). *)
  let merge_sorted (a : t) (b : t) =
    let rec go a b =
      match a, b with
      | [], b -> b
      | a, [] -> a
      | ((ra, _) as fa) :: a', ((rb, _) as fb) :: b' ->
        let c = String.compare ra rb in
        if c < 0 then fa :: go a' b
        else if c > 0 then fb :: go a b'
        else fa :: go a' b'
    in
    go a b
end

let tuple_make = Tuple.make
let compare_tuple = Tuple.compare

module Tbl = Hashtbl.Make (Tuple)

module Key = struct
  type t = Value.t list

  let equal a b = List.equal Value.equal a b
  let hash (k : t) = Hashtbl.hash_param 64 256 k
end

module KeyTbl = Hashtbl.Make (Key)

(* ------------------------------------------------------------------ *)
(* Layouts: compiled name -> slot resolution                           *)
(* ------------------------------------------------------------------ *)

module Layout = struct
  type t = string array

  let of_refs refs = Array.of_list (List.sort_uniq String.compare refs)
  let width (l : t) = Array.length l
  let names (l : t) = Array.to_list l
  let equal (a : t) (b : t) = a = b

  let slot (l : t) r =
    (* binary search over the sorted attribute names *)
    let rec go lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let c = String.compare r l.(mid) in
        if c = 0 then Some mid else if c < 0 then go lo mid else go (mid + 1) hi
    in
    go 0 (Array.length l)

  let slot_exn l r =
    match slot l r with
    | Some i -> i
    | None ->
      invalid_arg (Printf.sprintf "Relation.Layout.slot_exn: no slot for %S" r)

  let union (a : t) (b : t) = of_refs (Array.to_list a @ Array.to_list b)

  let row_of_tuple (l : t) (tup : tuple) : Value.t array =
    let w = Array.length l in
    let row = Array.make w Value.Null in
    let rec go i = function
      | [] -> if i = w then row else invalid_arg "Layout.row_of_tuple: width"
      | (r, v) :: rest ->
        if i >= w || not (String.equal r l.(i)) then
          invalid_arg
            (Printf.sprintf "Relation.Layout.row_of_tuple: unexpected %S" r)
        else (
          row.(i) <- v;
          go (i + 1) rest)
    in
    go 0 tup

  let tuple_of_row (l : t) (row : Value.t array) : tuple =
    let rec go i = if i = Array.length l then [] else (l.(i), row.(i)) :: go (i + 1) in
    go 0

  (* Projection plan: the output layout for [rs] plus, per output slot,
     the source slot it copies from.
     @raise Invalid_argument when an [rs] name is absent from [src]. *)
  let projection ~(src : t) rs : t * int array =
    let out = of_refs rs in
    (out, Array.map (slot_exn src) out)

  (* Merge plan for joins: the united layout plus, per output slot, a
     signed source index — [i >= 0] copies [left.(i)], [i < 0] copies
     [right.(-i - 1)].  Shared names copy from the left, matching
     [Tuple.merge_sorted]. *)
  let merge_plan ~(left : t) ~(right : t) : t * int array =
    let out = union left right in
    ( out,
      Array.map
        (fun n ->
          match slot left n with
          | Some i -> i
          | None -> -slot_exn right n - 1)
        out )

  (* Layout with one attribute added, plus the slot it lands in.
     @raise Invalid_argument when [r] is already present. *)
  let insertion (l : t) r : t * int =
    (match slot l r with
    | Some _ ->
      invalid_arg
        (Printf.sprintf "Relation.Layout.insertion: %S already present" r)
    | None -> ());
    let out = of_refs (r :: Array.to_list l) in
    (out, slot_exn out r)
end

(* Rows: tuples stripped of their names, positions fixed by a layout.
   Hash/equality mirror [Tuple]: canonical values make the generic hash
   consistent with [Value.equal]-based equality. *)
module Row = struct
  type t = Value.t array

  let equal (a : t) (b : t) =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash (r : t) = Hashtbl.hash_param 64 256 r
end

module RowTbl = Hashtbl.Make (Row)

(* One O(|refs|) pass: true iff the tuple's component names are exactly
   [refs], in order.  Canonical tuples hit this without re-sorting. *)
let rec names_match refs (tup : tuple) =
  match refs, tup with
  | [], [] -> true
  | r :: refs', (n, _) :: tup' -> String.equal r n && names_match refs' tup'
  | _ -> false

let make ~refs tuples =
  let refs = List.sort_uniq String.compare refs in
  let canon tup =
    if names_match refs tup then tup
    else
      let sorted = Tuple.make tup in
      if names_match refs sorted then sorted
      else
        invalid_arg
          (Format.asprintf "Relation.make: tuple refs {%s} differ from {%s}"
             (String.concat ", " (Tuple.names sorted))
             (String.concat ", " refs))
  in
  let tuples = List.map canon tuples in
  { refs; tuples = List.sort_uniq Tuple.compare tuples }

let empty ~refs = make ~refs []
let refs t = t.refs
let tuples t = t.tuples
let cardinality t = List.length t.tuples
let field tup r = List.assoc r tup
let same_refs a b = a.refs = b.refs

let equal a b =
  same_refs a b
  && List.length a.tuples = List.length b.tuples
  && List.for_all2 (fun x y -> compare_tuple x y = 0) a.tuples b.tuples

let of_values a vs =
  make ~refs:[ a ] (List.map (fun v -> [ (a, v) ]) (List.sort_uniq Value.compare vs))

let column t r = List.map (fun tup -> field tup r) t.tuples

(* ------------------------------------------------------------------ *)
(* Hash-based bulk operations                                          *)
(* ------------------------------------------------------------------ *)

let index t key_refs =
  let tbl = KeyTbl.create (max 16 (List.length t.tuples)) in
  List.iter
    (fun tup ->
      let k = Tuple.key key_refs tup in
      match KeyTbl.find_opt tbl k with
      | Some prev -> KeyTbl.replace tbl k (tup :: prev)
      | None -> KeyTbl.add tbl k [ tup ])
    t.tuples;
  tbl

let mem_set t =
  let tbl = Tbl.create (max 16 (List.length t.tuples)) in
  List.iter (fun tup -> Tbl.replace tbl tup ()) t.tuples;
  fun tup -> Tbl.mem tbl tup

let natural_join r1 r2 =
  let shared = List.filter (fun r -> List.mem r r2.refs) r1.refs in
  let out_refs = List.sort_uniq String.compare (r1.refs @ r2.refs) in
  (* build the hash index on the smaller side, probe with the larger *)
  let build, probe =
    if cardinality r1 <= cardinality r2 then (r1, r2) else (r2, r1)
  in
  let idx = index build shared in
  make ~refs:out_refs
    (List.concat_map
       (fun tp ->
         match KeyTbl.find_opt idx (Tuple.key shared tp) with
         | None -> []
         | Some matches ->
           List.map (fun tb -> Tuple.merge_sorted tp tb) matches)
       probe.tuples)

let union a b =
  if not (same_refs a b) then
    invalid_arg "Relation.union: arguments have differing references";
  let in_a = mem_set a in
  make ~refs:a.refs
    (a.tuples @ List.filter (fun tup -> not (in_a tup)) b.tuples)

let diff a b =
  if not (same_refs a b) then
    invalid_arg "Relation.diff: arguments have differing references";
  let in_b = mem_set b in
  make ~refs:a.refs (List.filter (fun tup -> not (in_b tup)) a.tuples)

let pp ppf t =
  Format.fprintf ppf "@[<v>{%s} (%d tuples)@," (String.concat ", " t.refs)
    (cardinality t);
  List.iter
    (fun tup ->
      Format.fprintf ppf "  [%a]@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (r, v) -> Format.fprintf ppf "%s: %a" r Value.pp v))
        tup)
    t.tuples;
  Format.fprintf ppf "@]"
