type 'k t = (string, ('k, unit) Hashtbl.t) Hashtbl.t

let create () = Hashtbl.create 4096
let clear t = Hashtbl.reset t

let postings t word =
  match Hashtbl.find_opt t word with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 8 in
    Hashtbl.replace t word s;
    s

let add t ~key ~text =
  List.iter (fun w -> Hashtbl.replace (postings t w) key ()) (Tokenizer.vocabulary text)

let remove_word t w key =
  match Hashtbl.find_opt t w with
  | None -> ()
  | Some s ->
    Hashtbl.remove s key;
    if Hashtbl.length s = 0 then Hashtbl.remove t w

let remove t ~key ~text =
  List.iter (fun w -> remove_word t w key) (Tokenizer.vocabulary text)

let replace t ~key ~old_text ~text =
  let new_words = Tokenizer.vocabulary text in
  let keep = Hashtbl.create (List.length new_words) in
  List.iter (fun w -> Hashtbl.replace keep w ()) new_words;
  (* only drop postings for words that really left; postings are keyed
     sets, so re-adding the surviving words is idempotent *)
  List.iter
    (fun w -> if not (Hashtbl.mem keep w) then remove_word t w key)
    (Tokenizer.vocabulary old_text);
  List.iter (fun w -> Hashtbl.replace (postings t w) key ()) new_words

let lookup t word =
  match Hashtbl.find_opt t (String.lowercase_ascii word) with
  | None -> []
  | Some s -> Hashtbl.fold (fun k () acc -> k :: acc) s []

let lookup_all t query =
  match Tokenizer.vocabulary query with
  | [] -> []
  | w :: ws ->
    let first = lookup t w in
    List.filter
      (fun k ->
        List.for_all
          (fun w' ->
            match Hashtbl.find_opt t w' with
            | None -> false
            | Some s -> Hashtbl.mem s k)
          ws)
      first

let add_posting t ~word ~key = Hashtbl.replace (postings t word) key ()

let load_postings t ~word ~keys =
  let s = Hashtbl.create (List.length keys) in
  List.iter (fun k -> Hashtbl.replace s k ()) keys;
  Hashtbl.replace t word s

let iter_postings t f =
  Hashtbl.iter
    (fun w s -> f w (Hashtbl.fold (fun k () acc -> k :: acc) s []))
    t

let word_count t = Hashtbl.length t

let posting_count t word =
  match Hashtbl.find_opt t (String.lowercase_ascii word) with
  | None -> 0
  | Some s -> Hashtbl.length s
