(** Inverted index: word → set of document keys.

    Backs the external method [Paragraph→retrieve_by_string(s)]: a single
    probe returns all paragraph keys whose content contains the word —
    the class-level access path that semantic optimization substitutes
    for per-object [contains_string] calls (equivalence E5). *)

type 'k t

val create : unit -> 'k t

val clear : 'k t -> unit
(** Drop all postings. *)

val add : 'k t -> key:'k -> text:string -> unit
(** Index [text] under [key].  Re-adding a key accumulates postings: the
    new text's words are added but stale postings of the previous text
    survive.  Bulk loaders that index each key exactly once may use this
    directly; update paths must go through {!replace}. *)

val remove : 'k t -> key:'k -> text:string -> unit
(** Remove the postings [text] created for [key]. *)

val replace : 'k t -> key:'k -> old_text:string -> text:string -> unit
(** Reindex [key] from [old_text] to [text]: postings for words that only
    occur in [old_text] are removed, words of [text] are (re)added.
    Equivalent to {!remove} followed by {!add}, without touching the
    postings of words common to both texts. *)

val lookup : 'k t -> string -> 'k list
(** Keys whose text contains the given word (case-insensitive); [] for
    unknown words.  Order unspecified, duplicate-free. *)

val lookup_all : 'k t -> string -> 'k list
(** Conjunctive multi-word query: keys containing {e every} word of the
    given string. *)

val add_posting : 'k t -> word:string -> key:'k -> unit
(** Add one pre-tokenized posting (the word is stored as given, so
    feed back only words produced by the tokenizer — the
    persisted-image load path). *)

val load_postings : 'k t -> word:string -> keys:'k list -> unit
(** Install the full posting list of one pre-tokenized word in a single
    right-sized allocation, replacing any existing postings for it.
    O(postings) with no rehash growth — the bulk path image restore
    takes instead of per-key {!add_posting}. *)

val iter_postings : 'k t -> (string -> 'k list -> unit) -> unit
(** Every word with its posting keys (order unspecified) — the dump
    feed for index persistence. *)

val word_count : 'k t -> int
(** Number of distinct indexed words. *)

val posting_count : 'k t -> string -> int
(** Number of keys indexed under the given word. *)
