(* The worked example of Section 2.3, end to end: the optimizer rederives
   the paper's transformation chain Q -> Q' -> ... -> PQ from the
   schema-specific knowledge E1..E5 and executes the resulting plan.

   Run with: dune exec examples/document_retrieval.exe *)

open Soqm_core

let query =
  "ACCESS p FROM p IN Paragraph \
   WHERE p->contains_string('Implementation') \
   AND (p->document()).title == 'Query Optimization'"

let show_knowledge () =
  Printf.printf "schema-specific knowledge given by the schema designer:\n";
  List.iter
    (fun spec -> Format.printf "  %a@." Soqm_semantics.Equivalence.pp spec)
    (Doc_knowledge.specs ());
  Printf.printf "\n"

let () =
  show_knowledge ();
  let db = Db.create ~params:{ Datagen.default with n_docs = 50 } () in
  let engine = Engine.generate db in

  Printf.printf "user query Q:\n  %s\n\n" query;
  let result = Engine.optimize_query engine query in
  Format.printf "%a@." (Soqm_optimizer.Trace.pp_result ?provenance:None) result;

  Printf.printf "\n=== execution at increasing database sizes ===\n";
  Printf.printf "%8s  %14s  %14s  %8s\n" "docs" "naive cost" "optimized cost" "speedup";
  List.iter
    (fun n_docs ->
      let db = Db.create ~params:{ Datagen.default with n_docs } () in
      let engine = Engine.generate db in
      let naive = Engine.run_naive db query in
      let opt = Engine.run_optimized engine query in
      assert (Soqm_algebra.Relation.equal naive.Engine.result opt.Engine.result);
      let cn = Soqm_vml.Counters.total_cost naive.Engine.counters in
      let co = Soqm_vml.Counters.total_cost opt.Engine.counters in
      Printf.printf "%8d  %14.1f  %14.1f  %7.1fx\n" n_docs cn co (cn /. co))
    [ 10; 40; 160 ]
