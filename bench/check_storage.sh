#!/bin/sh
# Storage gate: build, run the unit suites, then assert the disk
# subsystem bounds (EXP-A disk-vs-memory parity, pool hit rate, WAL
# recovery replay time; prefetch speedup on multi-core hosts) at
# n_docs=800 and refresh BENCH_storage.json.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
dune exec bench/storage.exe -- --assert --docs 800 --json BENCH_storage.json "$@"
