(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The paper (ICDE'95) has no numbered tables or figures; its empirical
   content is the worked example of Section 2.3 and a set of explicit
   claims.  Each EXP-* module below reproduces one claim as a
   deterministic table of logical costs (the machine-independent metric)
   plus, at the end, Bechamel wall-clock measurements for the headline
   comparison.

   Run with: dune exec bench/main.exe *)

open Soqm_vml
open Soqm_core

let query_q =
  "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
   AND (p->document()).title == 'Query Optimization'"

let section title =
  Printf.printf "\n=====================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=====================================================================\n"

let cost (r : Engine.report) = Counters.total_cost r.Engine.counters

(* ------------------------------------------------------------------ *)
(* EXP-A: the worked example at increasing database sizes              *)
(* ------------------------------------------------------------------ *)

let exp_a () =
  section
    "EXP-A  worked example (Section 2.3): straightforward vs optimized \
     evaluation";
  Printf.printf "%8s %12s | %14s %14s | %9s | %12s %12s | %s\n" "docs"
    "paragraphs" "naive cost" "optimized cost" "speedup" "naive tuples"
    "opt tuples" "results equal";
  List.iter
    (fun n_docs ->
      let db = Db.create ~params:{ Datagen.default with n_docs } () in
      let engine = Engine.generate db in
      let naive = Engine.run_naive db query_q in
      let opt = Engine.run_optimized engine query_q in
      let reference = Engine.run_reference db query_q in
      let equal =
        Soqm_algebra.Relation.equal naive.Engine.result opt.Engine.result
        && Soqm_algebra.Relation.equal naive.Engine.result
             reference.Engine.result
      in
      let cn = cost naive and co = cost opt in
      Printf.printf "%8d %12d | %14.1f %14.1f | %8.1fx | %12d %12d | %b\n"
        n_docs
        (Object_store.extent_size db.Db.store "Paragraph")
        cn co (cn /. co)
        (Counters.tuples_produced naive.Engine.counters)
        (Counters.tuples_produced opt.Engine.counters)
        equal)
    [ 50; 200; 800 ];
  Printf.printf
    "\nclaim: the optimized plan PQ is evaluated 'much more efficiently';\n\
     its cost is dominated by two index probes and is independent of the\n\
     database size, so the speedup grows linearly with the data.  The\n\
     tuples-touched columns separate plan quality (fewer tuples) from\n\
     evaluator overhead (time per tuple) — see EXPERIMENTS.md.\n"

(* ------------------------------------------------------------------ *)
(* EXP-B: ablation of the knowledge classes                            *)
(* ------------------------------------------------------------------ *)

let exp_b () =
  section "EXP-B  rule ablation: each knowledge class contributes";
  let db = Db.create ~params:{ Datagen.default with n_docs = 200 } () in
  let naive = Engine.run_naive db query_q in
  let full = Engine.generate db in
  let full_report = Engine.run_optimized full query_q in
  let line label report =
    Printf.printf "%-36s %14.1f %10s\n" label (cost report)
      (if Soqm_algebra.Relation.equal report.Engine.result naive.Engine.result
       then "ok"
       else "MISMATCH")
  in
  Printf.printf "%-36s %14s %10s\n" "configuration" "measured cost" "result";
  line "naive (no optimizer)" naive;
  line "all knowledge classes" full_report;
  List.iter
    (fun dropped ->
      let classes =
        List.filter (fun c -> c <> dropped) Doc_knowledge.all_classes
      in
      let eng = Engine.generate ~classes db in
      line
        (Printf.sprintf "without %s" (Doc_knowledge.class_name dropped))
        (Engine.run_optimized eng query_q))
    Doc_knowledge.all_classes;
  line "no schema-specific knowledge"
    (Engine.run_optimized (Engine.generate ~classes:[] db) query_q);
  Printf.printf
    "\nclaim: 'there is no way for the optimizer to derive the final query\n\
     plan from the user's query without having schema-specific information\n\
     on the semantics of the methods.'\n"

(* ------------------------------------------------------------------ *)
(* EXP-C: optimizer scaling with the rule set                          *)
(* ------------------------------------------------------------------ *)

let exp_c () =
  section "EXP-C  optimization effort vs size of the generated rule set";
  let db = Db.create ~params:{ Datagen.default with n_docs = 50 } () in
  let queries =
    [
      ("worked example Q", query_q);
      ( "two-range join",
        "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
         WHERE s.document == d AND d.title == 'Query Optimization'" );
    ]
  in
  Printf.printf "%-20s %6s %6s %9s %9s\n" "query" "kinds" "rules" "variants"
    "time(ms)";
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun k ->
          let classes =
            List.filteri (fun i _ -> i < k) Doc_knowledge.all_classes
          in
          let eng = Engine.generate ~classes db in
          let t0 = Unix.gettimeofday () in
          let res = Engine.optimize_query eng q in
          let dt = (Unix.gettimeofday () -. t0) *. 1000. in
          Printf.printf "%-20s %6d %6d %9d %9.1f\n" qname k
            (Engine.rule_count eng)
            res.Soqm_optimizer.Search.variants_explored dt)
        [ 0; 2; 4; 5 ])
    queries;
  (* the memo engine: Volcano's search-space organization, reference-
     preserving rules only *)
  Printf.printf "\nmemo engine (Volcano groups) on the worked example:\n";
  let schema = Object_store.schema db.Db.store in
  let dt, di =
    Soqm_semantics.Derive.rules_of_specs schema (Doc_knowledge.specs ())
  in
  let make_memo () =
    Soqm_optimizer.Memo.create
      (Engine.opt_ctx_of db)
      (Soqm_optimizer.Builtin_rules.transformations @ dt)
      (Soqm_optimizer.Builtin_rules.implementations @ di)
  in
  let logical = Engine.logical_of_query db query_q in
  let memo = make_memo () in
  let t0 = Unix.gettimeofday () in
  let _plan, memo_cost = Soqm_optimizer.Memo.optimize memo logical in
  let dt_memo = (Unix.gettimeofday () -. t0) *. 1000. in
  let st = Soqm_optimizer.Memo.stats memo in
  let sat = Engine.optimize (Engine.generate db) logical in
  Printf.printf
    "  saturation: %5d variants, est cost %7.1f\n\
    \  memo:       %5d exprs in %d groups (%d merges), est cost %7.1f, %.1f ms\n"
    sat.Soqm_optimizer.Search.variants_explored
    sat.Soqm_optimizer.Search.best_cost st.Soqm_optimizer.Memo.exprs
    st.Soqm_optimizer.Memo.groups st.Soqm_optimizer.Memo.merges memo_cost
    dt_memo;
  Printf.printf
    "\nclaim: Volcano-style rule-based optimization 'has been shown to be\n\
     very efficient'; adding schema-specific rules grows the explored\n\
     space but optimization stays in the tens of milliseconds.  The memo\n\
     organization shares subexpressions (orders of magnitude fewer\n\
     expressions) but, at subexpression granularity, only supports the\n\
     reference-preserving rules (see Memo's documentation) — which is why\n\
     this reproduction saturates whole terms by default.\n"

(* ------------------------------------------------------------------ *)
(* EXP-D: expensive method predicates and access-path crossover        *)
(* ------------------------------------------------------------------ *)

let exp_d () =
  section
    "EXP-D  methods are not uniform-cost attributes: predicate cost drives \
     the plan";
  Printf.printf "query: %s\n\n" query_q;
  Printf.printf
    "the title probe yields ~%d candidate paragraphs; calling the\n\
     per-object method on them costs candidates x c, the class-level\n\
     retrieve_by_string probe a flat %.0f — the optimizer must switch at\n\
     the crossover.\n\n"
    (Datagen.default.Datagen.sections_per_doc
    * Datagen.default.Datagen.paras_per_section)
    Doc_schema.cost_retrieve_by_string;
  Printf.printf "%16s | %-14s %14s | %16s\n" "contains cost" "access path"
    "measured cost" "contains calls";
  List.iter
    (fun c ->
      let schema = Doc_schema.make ~cost_contains_string:c () in
      let db =
        Db.create ~schema ~params:{ Datagen.default with n_docs = 50 } ()
      in
      let engine = Engine.generate db in
      let opt = Engine.run_optimized engine query_q in
      let plan =
        match opt.Engine.opt with
        | Some o -> o.Soqm_optimizer.Search.best_plan
        | None -> assert false
      in
      let rec uses_retrieve = function
        | Soqm_physical.Plan.MethodScan (_, _, "retrieve_by_string", _) -> true
        | p -> List.exists uses_retrieve (Soqm_physical.Plan.inputs p)
      in
      Printf.printf "%16.2f | %-14s %14.1f | %16d\n" c
        (if uses_retrieve plan then "index (E5)" else "per-object")
        (cost opt)
        (Counters.method_call_count opt.Engine.counters
           "Paragraph.contains_string"))
    [ 0.05; 0.5; 5.0; 50.0 ];
  Printf.printf
    "\nclaim (Section 2.3, citing predicate migration): method access cost\n\
     is not uniform; the optimizer must know it.  When the per-object\n\
     method is cheap the optimizer filters first and calls it on the few\n\
     candidates; past the crossover it switches to the class-level access\n\
     path E5 provides.\n"

(* ------------------------------------------------------------------ *)
(* EXP-E: path expressions as implicit joins (Example 8)               *)
(* ------------------------------------------------------------------ *)

let exp_e () =
  section "EXP-E  transformation of path expressions into explicit joins";
  let q =
    "ACCESS s FROM s IN Section WHERE (s.document).title == 'Query \
     Optimization'"
  in
  Printf.printf "query: %s\n\n" q;
  Printf.printf "%8s | %14s %14s\n" "docs" "navigation" "with Example 8";
  List.iter
    (fun n_docs ->
      let db = Db.create ~params:{ Datagen.default with n_docs } () in
      let without =
        Engine.generate ~classes:[]
          ~builtin_filter:(fun n -> n <> "path-to-join")
          db
      in
      let with_rule = Engine.generate ~classes:[] db in
      let r1 = Engine.run_optimized without q in
      let r2 = Engine.run_optimized with_rule q in
      assert (Soqm_algebra.Relation.equal r1.Engine.result r2.Engine.result);
      Printf.printf "%8d | %14.1f %14.1f\n" n_docs (cost r1) (cost r2))
    [ 50; 200 ];
  Printf.printf
    "\nclaim (Example 8): rewriting the implicit join of a path expression\n\
     into an explicit join opens plans that replace per-tuple navigation\n\
     by a join against a (small or indexed) class extent.\n"

(* ------------------------------------------------------------------ *)
(* EXP-F: implications and precomputed information                     *)
(* ------------------------------------------------------------------ *)

let exp_f () =
  section "EXP-F  implication rules with precomputed largeParagraphs";
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  Printf.printf "query: %s\n\n" q;
  Printf.printf "%12s | %14s %14s | %18s\n" "large frac" "without impl"
    "with impl" "wordCount calls";
  List.iter
    (fun large_fraction ->
      let db =
        Db.create
          ~params:{ Datagen.default with n_docs = 100; large_fraction }
          ()
      in
      let with_impl = Engine.generate db in
      let without_impl =
        Engine.generate
          ~classes:
            Doc_knowledge.
              [
                Path_methods; Index_equivalences; Inverse_links;
                Query_method_equivs;
              ]
          db
      in
      let r_with = Engine.run_optimized with_impl q in
      let r_without = Engine.run_optimized without_impl q in
      assert (
        Soqm_algebra.Relation.equal r_with.Engine.result r_without.Engine.result);
      Printf.printf "%11.0f%% | %14.1f %14.1f | %8d -> %7d\n"
        (large_fraction *. 100.)
        (cost r_without) (cost r_with)
        (Counters.method_call_count r_without.Engine.counters
           "Paragraph.wordCount")
        (Counters.method_call_count r_with.Engine.counters "Paragraph.wordCount"))
    [ 0.01; 0.10; 0.50 ];
  Printf.printf
    "\nclaim (Section 4.2): implications 'can be very interesting for\n\
     finding efficient execution plans in the presence of precomputed\n\
     information' — the benefit tracks the precomputed set's selectivity.\n"

(* ------------------------------------------------------------------ *)
(* EXP-G: equi-expressiveness of the restricted algebra                *)
(* ------------------------------------------------------------------ *)

let exp_g () =
  section "EXP-G  general vs restricted algebra (Section 6.1)";
  let db = Db.create ~params:{ Datagen.default with n_docs = 10 } () in
  let rand = Random.State.make [| 2026 |] in
  let n = 200 in
  let sizes = ref [] in
  let preserved = ref 0 in
  for _ = 1 to n do
    let g = QCheck2.Gen.generate1 ~rand Soqm_testlib.Gen.term_gen in
    match Soqm_algebra.General.well_formed g with
    | Error _ -> incr preserved (* unreachable: the generator is sound *)
    | Ok () ->
      let r = Soqm_algebra.Translate.of_general g in
      sizes := (Soqm_algebra.General.size g, Soqm_algebra.Restricted.size r) :: !sizes;
      let expected = Soqm_algebra.Eval.run db.Db.store g in
      let got =
        Soqm_algebra.Eval.run db.Db.store (Soqm_algebra.Restricted.to_general r)
      in
      if Soqm_algebra.Relation.equal expected got then incr preserved
  done;
  let gsum = List.fold_left (fun a (g, _) -> a + g) 0 !sizes in
  let rsum = List.fold_left (fun a (_, r) -> a + r) 0 !sizes in
  let worst =
    List.fold_left
      (fun w (g, r) -> Float.max w (float_of_int r /. float_of_int g))
      0. !sizes
  in
  Printf.printf
    "random terms: %d   semantics preserved: %d/%d\n\
     average operators: general %.2f -> restricted %.2f (x%.2f)\n\
     worst per-term blow-up: x%.2f\n"
    n !preserved n
    (float_of_int gsum /. float_of_int (List.length !sizes))
    (float_of_int rsum /. float_of_int (List.length !sizes))
    (float_of_int rsum /. float_of_int gsum)
    worst;
  Printf.printf
    "\nclaim: 'Both algebras have the same expressive power' — expression\n\
     composition becomes operator composition, with a modest constant\n\
     factor in operator count.\n"

(* ------------------------------------------------------------------ *)
(* EXP-H: derived data — method results vs stored properties           *)
(* ------------------------------------------------------------------ *)

let exp_h () =
  section "EXP-H  derived data (Section 5.1): the access-path ladder";
  let q = "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" in
  Printf.printf "query: %s\n\n" q;
  let db = Db.create ~params:{ Datagen.default with n_docs = 100 } () in
  let derived_spec =
    Soqm_semantics.Spec_lang.parse_spec
      (Object_store.schema db.Db.store)
      "[WordCountStored] FORALL p IN Paragraph: p->wordCount() == p.word_count"
  in
  let configs =
    [
      ("no knowledge", Engine.generate ~classes:[] db);
      ( "implication (largeParagraphs)",
        Engine.generate ~classes:Doc_knowledge.[ Path_methods; Implications ] db );
      ( "derived data (ordered index)",
        Engine.generate ~classes:[] ~extra_specs:[ derived_spec ] db );
    ]
  in
  let naive = Engine.run_naive db q in
  Printf.printf "%-34s %14s %16s\n" "knowledge" "measured cost" "wordCount calls";
  Printf.printf "%-34s %14.1f %16d\n" "(naive)" (cost naive)
    (Counters.method_call_count naive.Engine.counters "Paragraph.wordCount");
  List.iter
    (fun (label, eng) ->
      let r = Engine.run_optimized eng q in
      assert (Soqm_algebra.Relation.equal r.Engine.result naive.Engine.result);
      Printf.printf "%-34s %14.1f %16d\n" label (cost r)
        (Counters.method_call_count r.Engine.counters "Paragraph.wordCount"))
    configs;
  Printf.printf
    "\nclaim (Section 5.1): 'the return values of methods constitute derived\n\
     data ... relationships between these return values and the database\n\
     state exist.'  Telling the optimizer that wordCount() equals the\n\
     stored property turns the method predicate into one ordered-index\n\
     probe — stronger than the implication, which only narrows the\n\
     candidates.\n"

(* ------------------------------------------------------------------ *)
(* EXP-I: cost model calibration                                       *)
(* ------------------------------------------------------------------ *)

let exp_i () =
  section "EXP-I  cost model calibration: estimated vs measured cost";
  let db = Db.create ~params:{ Datagen.default with n_docs = 100 } () in
  let engine = Engine.generate db in
  let queries =
    [
      ("worked example Q", query_q);
      ("title probe", "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'");
      ("word count", "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500");
      ( "section path",
        "ACCESS s FROM s IN Section WHERE (s.document).title == 'Query \
         Optimization'" );
      ( "dependent range",
        "ACCESS d.title FROM d IN Document, p IN d->paragraphs() WHERE \
         p->contains_string('Implementation')" );
      ( "join",
        "ACCESS [n: s.number] FROM s IN Section, d IN Document WHERE \
         s.document == d AND d.author == 'Author 0'" );
    ]
  in
  Printf.printf "%-20s %14s %14s %8s\n" "query" "estimated" "measured" "ratio";
  let ratios =
    List.map
      (fun (name, q) ->
        let opt = Engine.run_optimized engine q in
        let est =
          match opt.Engine.opt with
          | Some o -> o.Soqm_optimizer.Search.best_cost
          | None -> nan
        in
        let measured = cost opt in
        let ratio = est /. measured in
        Printf.printf "%-20s %14.1f %14.1f %8.2f\n" name est measured ratio;
        ratio)
      queries
  in
  let lo = List.fold_left Float.min infinity ratios in
  let hi = List.fold_left Float.max 0. ratios in
  Printf.printf
    "\nestimate/measured spread: %.2f .. %.2f — 'a simple cost model'\n\
     (Section 7) needs only to rank alternatives, not predict absolute\n\
     costs; ratios within one order of magnitude suffice for that.\n"
    lo hi

(* ------------------------------------------------------------------ *)
(* Wall-clock measurements (Bechamel)                                  *)
(* ------------------------------------------------------------------ *)

let wall_clock () =
  section "wall-clock micro-benchmarks (Bechamel, OLS time/run)";
  let open Bechamel in
  let open Toolkit in
  let db = Db.create ~params:{ Datagen.default with n_docs = 50 } () in
  let engine = Engine.generate db in
  let logical = Engine.logical_of_query db query_q in
  let opt = Engine.optimize engine logical in
  let naive_plan = Soqm_physical.Plan.default_implementation logical in
  let ctx = Engine.exec_ctx db in
  (* the engine caches plans by canonical logical term; measure the cold
     search separately by calling the search engine directly *)
  let schema = Object_store.schema db.Db.store in
  let derived_t, derived_i =
    Soqm_semantics.Derive.rules_of_specs schema (Doc_knowledge.specs ())
  in
  let cold_optimize () =
    Soqm_optimizer.Search.optimize (Engine.opt_ctx_of db)
      (Soqm_optimizer.Builtin_rules.transformations @ derived_t)
      (Soqm_optimizer.Builtin_rules.implementations @ derived_i)
      logical
  in
  let tests =
    [
      Test.make ~name:"execute-naive-plan"
        (Staged.stage (fun () -> ignore (Soqm_physical.Exec.run ctx naive_plan)));
      Test.make ~name:"execute-optimized-plan"
        (Staged.stage (fun () ->
             ignore
               (Soqm_physical.Exec.run ctx opt.Soqm_optimizer.Search.best_plan)));
      Test.make ~name:"optimize-q-cold"
        (Staged.stage (fun () -> ignore (cold_optimize ())));
      Test.make ~name:"optimize-q-plan-cache-hit"
        (Staged.stage (fun () -> ignore (Engine.optimize engine logical)));
      Test.make ~name:"parse-and-translate"
        (Staged.stage (fun () -> ignore (Engine.logical_of_query db query_q)));
    ]
  in
  let grouped = Test.make_grouped ~name:"soqm" ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let label = Measure.label Instance.monotonic_clock in
  let entries =
    Hashtbl.fold (fun name b acc -> (name, b) :: acc) raw []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "%-34s %16s %10s\n" "benchmark" "time/run" "r²";
  List.iter
    (fun (name, (b : Benchmark.t)) ->
      let ols =
        Analyze.OLS.ols ~bootstrap:0 ~r_square:true ~responder:label
          ~predictors:[| Measure.run |] b.Benchmark.lr
      in
      let time_ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
      in
      let pretty t =
        if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      Printf.printf "%-34s %16s %10s\n" name (pretty time_ns)
        (match Analyze.OLS.r_square ols with
        | Some r2 -> Printf.sprintf "%.3f" r2
        | None -> "-"))
    entries

let () =
  Printf.printf
    "Semantic Query Optimization for Methods — experiment harness\n\
     (logical costs are deterministic; wall-clock at the end)\n";
  exp_a ();
  exp_b ();
  exp_c ();
  exp_d ();
  exp_e ();
  exp_f ();
  exp_g ();
  exp_h ();
  exp_i ();
  wall_clock ();
  Printf.printf "\nall experiments completed.\n"
