#!/bin/sh
# CI gate: tier-1 build + tests (which include the QCheck parity suite:
# compiled executor == interpreted executor == Naive oracle on random
# plans), then the batch-executor assertions — median ns/row speedup
# >= 3x over the interpreted executor on the EXP-A operator mix at
# n_docs=800, zero result-set divergence between executors, and the
# plan-cache hit rate from PR 2 still >= 90% with hits now also skipping
# plan compilation.  Writes BENCH_exec.json next to this script's parent
# directory.  Exit code is non-zero on any failure.
#
# On top of the relative speedup gate, the script pins the *absolute*
# compiled cost: the new median_compiled_ns_per_row must not regress more
# than 10% over the value in the committed BENCH_exec.json.  A relative
# gate alone would let a change slow both executors down in lockstep and
# still pass; anchoring to the committed absolute number catches that.
# The check is skipped (with a notice) when the committed file predates
# the field or does not exist — the run then seeds the baseline.
#
# Pass --seed N (default 42) to regenerate the database from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

baseline=""
if [ -f BENCH_exec.json ]; then
  baseline=$(sed -n 's/.*"median_compiled_ns_per_row": *\([0-9.]*\).*/\1/p' \
    BENCH_exec.json | head -n 1)
fi

dune build
dune runtest
dune exec bench/exec.exe -- --assert --docs 800 --json BENCH_exec.json "$@"

current=$(sed -n 's/.*"median_compiled_ns_per_row": *\([0-9.]*\).*/\1/p' \
  BENCH_exec.json | head -n 1)
if [ -z "$baseline" ]; then
  echo "check_exec: no committed median_compiled_ns_per_row; seeded baseline ${current} ns/row"
elif [ -z "$current" ]; then
  echo "check_exec: FAIL - rerun produced no median_compiled_ns_per_row" >&2
  exit 1
else
  # regression bound: current <= 1.1 * baseline
  ok=$(awk -v c="$current" -v b="$baseline" 'BEGIN { print (c <= 1.1 * b) ? 1 : 0 }')
  if [ "$ok" -eq 1 ]; then
    echo "check_exec: absolute ns/row ok (${current} vs baseline ${baseline}, bound +10%)"
  else
    echo "check_exec: FAIL - median compiled ns/row regressed: ${current} vs baseline ${baseline} (bound +10%)" >&2
    exit 1
  fi
fi
