#!/bin/sh
# CI gate: tier-1 build + tests (which include the QCheck parity suite:
# compiled executor == interpreted executor == Naive oracle on random
# plans), then the batch-executor assertions — median ns/row speedup
# >= 3x over the interpreted executor on the EXP-A operator mix at
# n_docs=800, zero result-set divergence between executors, and the
# plan-cache hit rate from PR 2 still >= 90% with hits now also skipping
# plan compilation.  Writes BENCH_exec.json next to this script's parent
# directory.  Exit code is non-zero on any failure.
#
# Pass --seed N (default 42) to regenerate the database from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/exec.exe -- --assert --docs 800 --json BENCH_exec.json "$@"
