(* Batch-executor micro-benchmark: the EXP-A operator mix, interpreted
   vs slot-compiled.

   For each entry the same physical plan is drained through both
   executors in their native formats — canonical tuples from
   [Exec.Interpreted.open_plan], row blocks from [Exec.open_compiled] —
   so the numbers measure executor overhead, not the shared
   [Relation.make] canonicalization at the query boundary.  Each side is
   timed over [reps] runs after a warm-up; the table reports median
   ns/row and the per-entry speedup.  Result sets are additionally
   compared ([Relation.equal]) through full untimed runs: any divergence
   fails the gate.

   A plan-cache check rides along: the worked EXP-A query executed
   repeatedly through a generated engine must keep the >= 90% hit rate
   established in PR 2 (hits now also skip plan compilation).

   Run with:     dune exec bench/exec.exe
   Assert mode:  dune exec bench/exec.exe -- --assert [--docs N] [--seed N]
                                             [--json PATH]
   (exit code 1 when median speedup < 3x, any result diverges, or the
   plan-cache hit rate drops below 90%)

   [--seed N] regenerates the database from a different Datagen seed
   (default 42); all benches share the flag so a run over several seeds
   exercises the gates on independent data sets. *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra
module P = Soqm_physical

let query_q =
  "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
   AND (p->document()).title == 'Query Optimization'"

let reps = 5
let min_median_speedup = 3.0
let min_hit_rate = 0.9

(* ------------------------------------------------------------------ *)
(* The operator mix                                                    *)
(* ------------------------------------------------------------------ *)

(* [ident a src base] extends each tuple with [a := src] — pure executor
   work (inserts, operand resolution), no object-store access, so the
   entries below time the operators themselves. *)
let ident a src base =
  P.Plan.MapOp (a, A.Restricted.OpIdent, [ A.Restricted.ORef src ], base)

let scan_p = P.Plan.FullScan ("p", "Paragraph")

(* [chain names src base]: one ident map per name, widening the tuple by
   one reference each — the widths (3-7 references) match what the
   optimizer's EXP-A plans carry once join keys and derived columns are
   in flight. *)
let chain names src base =
  snd
    (List.fold_left
       (fun (src, plan) name -> (name, ident name src plan))
       (src, base) names)

let map_chain = chain [ "k1"; "k2"; "k3" ] "p" scan_p
let map_wide = chain [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6" ] "p" scan_p

let filter_plan =
  P.Plan.Filter
    (A.Restricted.CEq, A.Restricted.ORef "k1", A.Restricted.ORef "p", map_chain)

let hash_join_plan =
  P.Plan.HashJoin
    ( "a1", "b1",
      chain [ "a1"; "a2" ] "p" scan_p,
      chain [ "b1"; "b2" ] "q" (P.Plan.FullScan ("q", "Paragraph")) )

(* shared reference: [p] only — one-column key, four-column merge *)
let natural_join_plan =
  P.Plan.NaturalJoin (chain [ "c1"; "c2" ] "p" scan_p, chain [ "d1" ] "p" scan_p)

let nested_loop_plan =
  P.Plan.NestedLoop
    ( None,
      chain [ "x1" ] "d" (P.Plan.FullScan ("d", "Document")),
      chain [ "y1" ] "e" (P.Plan.FullScan ("e", "Document")) )

let union_plan = P.Plan.Union (map_chain, map_chain)

(* right side is the same pipeline gated by a constant-false predicate:
   an empty exclusion set, so every left row survives the probe *)
let diff_plan =
  P.Plan.Diff
    ( map_chain,
      P.Plan.Filter
        ( A.Restricted.CEq,
          A.Restricted.OConst (Value.Int 1),
          A.Restricted.OConst (Value.Int 2),
          map_chain ) )

let project_plan = P.Plan.Project ([ "p" ], map_wide)

let entries schema =
  let worked_q =
    P.Plan.default_implementation
      (A.Translate.of_general
         (Soqm_vql.To_algebra.query_to_algebra schema query_q))
  in
  [
    ("full_scan", scan_p);
    ("map_chain", map_chain);
    ("map_wide", map_wide);
    ("filter", filter_plan);
    ("hash_join", hash_join_plan);
    ("natural_join", natural_join_plan);
    ("nested_loop", nested_loop_plan);
    ("union", union_plan);
    ("diff", diff_plan);
    ("project", project_plan);
    ("worked_q_naive", worked_q);
  ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let n = f () in
  (n, Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let drain_interpreted ctx plan () =
  let it = P.Exec.Interpreted.open_plan ctx plan in
  let n = ref 0 in
  let rec go () =
    match it.P.Exec.next () with
    | Some _ ->
      incr n;
      go ()
    | None -> it.P.Exec.close ()
  in
  go ();
  !n

(* Stream-count without retaining blocks, mirroring the interpreted
   drain: neither side keeps its output alive. *)
let drain_compiled ctx compiled () =
  let b = P.Exec.open_compiled ctx compiled in
  let n = ref 0 in
  let rec go () =
    match b.P.Exec.next_block () with
    | Some rows ->
      n := !n + Array.length rows;
      go ()
    | None -> b.P.Exec.close_blocks ()
  in
  go ();
  !n

let measure_side f =
  (* start each side from a settled heap: the hash-heavy entries are
     otherwise at the mercy of whatever major-GC debt the previous
     entry left behind, which moves their medians by 2x run to run *)
  Gc.compact ();
  ignore (f ()) (* warm-up *);
  let rows = ref 0 in
  let times =
    List.init reps (fun _ ->
        let n, s = time f in
        rows := n;
        s)
  in
  (!rows, median times)

type entry_result = {
  name : string;
  rows : int;
  interp_ns : float;
  compiled_ns : float;
  speedup : float;
  diverged : bool;
}

let measure_entry ctx (name, plan) =
  (* [~fuse:false]: this bench gates the *unfused* block executor against
     the interpreted one, and its absolute ns/row is the regression bound
     [check_exec.sh] holds the unfused path to.  The fused kernels have
     their own bench and gates (bench/columnar.ml), measured against the
     numbers recorded here. *)
  let compiled = P.Exec.compile ~fuse:false ctx plan in
  let r_interp = P.Exec.Interpreted.run ctx plan in
  let r_compiled = P.Exec.run_compiled ctx compiled in
  let diverged = not (A.Relation.equal r_interp r_compiled) in
  let rows_i, t_interp = measure_side (drain_interpreted ctx plan) in
  let rows_c, t_compiled = measure_side (drain_compiled ctx compiled) in
  assert (rows_i = rows_c);
  let per_row t = t /. float_of_int (max 1 rows_c) *. 1e9 in
  {
    name;
    rows = rows_c;
    interp_ns = per_row t_interp;
    compiled_ns = per_row t_compiled;
    speedup = t_interp /. t_compiled;
    diverged;
  }

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_exec.json)                                     *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~paras ~seed ~cores results ~median_speedup
    ~median_compiled_ns ~hit_rate =
  let oc = open_out path in
  let entry r =
    Printf.sprintf
      "    {\"name\": %S, \"rows\": %d, \"interpreted_ns_per_row\": %.1f, \
       \"compiled_ns_per_row\": %.1f, \"speedup\": %.2f, \"diverged\": %b}"
      r.name r.rows r.interp_ns r.compiled_ns r.speedup r.diverged
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"exec\",\n\
    \  \"n_docs\": %d,\n\
    \  \"paragraphs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"block_size\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"entries\": [\n%s\n  ],\n\
    \  \"median_speedup\": %.2f,\n\
    \  \"median_compiled_ns_per_row\": %.1f,\n\
    \  \"divergences\": %d,\n\
    \  \"plan_cache_hit_rate\": %.3f\n\
     }\n"
    n_docs paras seed cores P.Exec.block_size reps
    (String.concat ",\n" (List.map entry results))
    median_speedup median_compiled_ns
    (List.length (List.filter (fun r -> r.diverged) results))
    hit_rate;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 800 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_exec.json" Fun.id in
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let ctx = Engine.exec_ctx db in
  let schema = Object_store.schema db.Db.store in
  let paras = Object_store.extent_size db.Db.store "Paragraph" in
  Printf.printf
    "batch executor vs interpreted (n_docs=%d, %d paragraphs, block=%d)\n"
    n_docs paras P.Exec.block_size;
  Printf.printf "%-16s %10s %14s %14s %9s\n" "operator" "rows" "interp ns/row"
    "compiled ns/row" "speedup";
  let results = List.map (measure_entry ctx) (entries schema) in
  List.iter
    (fun r ->
      Printf.printf "%-16s %10d %14.1f %14.1f %8.2fx%s\n" r.name r.rows
        r.interp_ns r.compiled_ns r.speedup
        (if r.diverged then "  DIVERGED" else ""))
    results;
  let median_speedup = median (List.map (fun r -> r.speedup) results) in
  (* absolute regression anchor: the median unfused-compiled ns/row over
     the mix, recorded in the JSON so check_exec.sh can bound drift
     against the committed value *)
  let median_compiled_ns = median (List.map (fun r -> r.compiled_ns) results) in
  let divergences = List.filter (fun r -> r.diverged) results in
  (* plan-cache hit rate with compiled plans cached (PR 2 invariant) *)
  let engine = Engine.generate db in
  for _ = 1 to 20 do
    ignore (Engine.run_optimized engine query_q)
  done;
  let hits, misses = Engine.cache_stats engine in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf "\nmedian speedup: %.2fx (bound %.0fx)\n" median_speedup
    min_median_speedup;
  Printf.printf "plan-cache hit rate over %d runs: %.1f%% (bound %.0f%%)\n"
    (hits + misses) (100. *. hit_rate) (100. *. min_hit_rate);
  write_json json_path ~n_docs ~paras ~seed
    ~cores:(Domain.recommended_domain_count ())
    results ~median_speedup ~median_compiled_ns ~hit_rate;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  if divergences <> [] then begin
    Printf.printf "FAIL: %d entries diverged between executors: %s\n"
      (List.length divergences)
      (String.concat ", " (List.map (fun r -> r.name) divergences));
    failed := true
  end;
  if median_speedup < min_median_speedup then begin
    Printf.printf "FAIL: median speedup %.2fx below the %.0fx bound\n"
      median_speedup min_median_speedup;
    failed := true
  end;
  if hit_rate < min_hit_rate then begin
    Printf.printf "FAIL: plan-cache hit rate %.1f%% below %.0f%%\n"
      (100. *. hit_rate) (100. *. min_hit_rate);
    failed := true
  end;
  if not !failed then
    Printf.printf "OK: compiled executor %.2fx faster (median), %d/%d results \
                   identical, cache hot\n"
      median_speedup
      (List.length results - List.length divergences)
      (List.length results);
  if !failed && assert_mode then exit 1
