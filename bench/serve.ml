(* Concurrent serving benchmark and CI gate.

   Exercises the PR-7 serving subsystem ([Soqm_server] over [Soqm_txn])
   end to end, with real OS processes as clients:

   1. The parent builds a database, saves it, reopens it disk-backed,
      binds the listen socket, and launches N >= 8 client processes by
      re-executing itself in [--client] mode via [Unix.create_process]
      (posix_spawn underneath — plain [Unix.fork] is forbidden once the
      engine's pool domains exist).  The kernel queues the children's
      connects until the accept loops start.

   2. Each client drives the EXP-A query mix plus DML over the wire:
      a rotation of optimized queries (row counts checked against the
      expected counts computed before the fork), auto-committed updates
      to the client's own paragraph, and Begin/Get/Update/Commit
      increment transactions against one shared paragraph counter,
      retrying on Conflict.  Every request is timed.

   3. Gates: zero isolation anomalies (every query sees exactly the
      expected rows; the shared counter equals its initial value plus
      the serial sum of committed increments; each private cell equals
      that client's last write), fsyncs per committed WAL batch
      strictly < 1 (group commit must coalesce), and — only on hosts
      with >= 4 cores, mirroring bench/parallel.ml — bounds on p99
      latency and aggregate throughput.

   Run with:     dune exec bench/serve.exe
   Assert mode:  dune exec bench/serve.exe -- --assert [--docs N]
                 [--clients N] [--ops N] [--seed N]
   (exit code 1 when a bound is violated)

   Emits BENCH_serve.json; [--seed N] is shared across all benches. *)

open Soqm_vml
open Soqm_core
module Server = Soqm_server.Server
module Protocol = Soqm_server.Protocol

(* the EXP-A mix of bench/dml.ml *)
let queries =
  [
    ( "worked",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'" );
    ("title", "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'");
    ("large", "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500");
    ( "join",
      "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
       WHERE s.document == d AND d.title == 'Query Optimization'" );
    ("contains", "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation')")
  ]

(* gates *)
let max_fsync_per_commit = 1.0
let max_p99_ms = 200.
let min_throughput_rps = 300.
let min_cores_for_latency_gate = 4

let failures = ref 0

let check name ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %s\n" name)
  else Printf.printf "ok   %s\n" name

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

let with_temp_dir prefix f =
  let dir = Filename.temp_file prefix ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun entry -> Sys.remove (Filename.concat dir entry))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let rt = Protocol.roundtrip

(* ------------------------------------------------------------------ *)
(* The client process body                                             *)
(* ------------------------------------------------------------------ *)

type client_result = {
  mutable committed : int;  (* shared-counter increments that committed *)
  mutable conflicts : int;
  mutable anomalies : int;
  mutable own_final : int;  (* last value written to the private cell *)
  lats : float list ref;    (* per-request latency, seconds *)
}

let timed_rt res c req =
  let t0 = Unix.gettimeofday () in
  let r = rt c req in
  res.lats := (Unix.gettimeofday () -. t0) :: !(res.lats);
  r

let client_body ~port ~ops ~expected ~shared ~own ~out_path =
  let res =
    { committed = 0; conflicts = 0; anomalies = 0; own_final = 0; lats = ref [] }
  in
  let c = Protocol.connect ~port () in
  let n_q = List.length queries in
  for j = 1 to ops do
    match j mod 3 with
    | 0 ->
      (* optimized query: the row count is the isolation oracle *)
      let k = j / 3 mod n_q in
      let _, src = List.nth queries k in
      (match timed_rt res c (Protocol.Query src) with
      | Protocol.Rows (_, rows) ->
        if List.length rows <> List.nth expected k then
          res.anomalies <- res.anomalies + 1
      | _ -> res.anomalies <- res.anomalies + 1)
    | 1 ->
      (* auto-committed DML on the private cell: no contention *)
      let v = res.own_final + 1 in
      (match timed_rt res c (Protocol.Update (own, "number", Value.Int v)) with
      | Protocol.Committed _ -> res.own_final <- v
      | _ -> res.anomalies <- res.anomalies + 1)
    | _ ->
      (* shared-counter increment transaction, first-committer-wins *)
      let rec attempt tries =
        if tries > 1_000 then res.anomalies <- res.anomalies + 1
        else begin
          ignore (timed_rt res c Protocol.Begin);
          match timed_rt res c (Protocol.Get (shared, "number")) with
          | Protocol.Value (Value.Int v) -> (
            ignore
              (timed_rt res c (Protocol.Update (shared, "number", Value.Int (v + 1))));
            match timed_rt res c Protocol.Commit with
            | Protocol.Committed _ -> res.committed <- res.committed + 1
            | Protocol.Conflict _ ->
              res.conflicts <- res.conflicts + 1;
              attempt (tries + 1)
            | _ -> res.anomalies <- res.anomalies + 1)
          | _ ->
            ignore (timed_rt res c Protocol.Abort);
            res.anomalies <- res.anomalies + 1
        end
      in
      attempt 0
  done;
  Unix.close c;
  let oc = open_out out_path in
  Printf.fprintf oc "committed %d\nconflicts %d\nanomalies %d\nown_final %d\n"
    res.committed res.conflicts res.anomalies res.own_final;
  List.iter (fun l -> Printf.fprintf oc "lat %.9f\n" l) !(res.lats);
  close_out oc

let client_main () =
  let port = arg_value "--client-port" 0 int_of_string in
  let ops = arg_value "--client-ops" 0 int_of_string in
  let shared =
    Oid.make ~cls:"Paragraph" ~id:(arg_value "--client-shared-id" 0 int_of_string)
  in
  let own =
    Oid.make ~cls:"Paragraph" ~id:(arg_value "--client-own-id" 0 int_of_string)
  in
  let out_path = arg_value "--client-out" "" Fun.id in
  let expected =
    arg_value "--client-expected" [] (fun s ->
        List.map int_of_string (String.split_on_char ',' s))
  in
  client_body ~port ~ops ~expected ~shared ~own ~out_path

(* ------------------------------------------------------------------ *)
(* Parent-side aggregation                                             *)
(* ------------------------------------------------------------------ *)

let read_client_file path =
  let ic = open_in path in
  let committed = ref 0
  and conflicts = ref 0
  and anomalies = ref 0
  and own_final = ref 0
  and lats = ref [] in
  (try
     while true do
       match String.split_on_char ' ' (input_line ic) with
       | [ "committed"; v ] -> committed := int_of_string v
       | [ "conflicts"; v ] -> conflicts := int_of_string v
       | [ "anomalies"; v ] -> anomalies := int_of_string v
       | [ "own_final"; v ] -> own_final := int_of_string v
       | [ "lat"; v ] -> lats := float_of_string v :: !lats
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (!committed, !conflicts, !anomalies, !own_final, !lats)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_serve.json)                                    *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~seed ~cores ~clients ~ops ~requests ~wall_s
    ~throughput ~p50_ms ~p99_ms ~enforced ~anomalies ~lost ~initial ~final
    ~committed ~conflicts ~wal_commits ~wal_fsyncs ~fsync_ratio =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"serve\",\n\
    \  \"n_docs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"ops_per_client\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"throughput_rps\": %.1f,\n\
    \  \"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, \"p99_bound\": %.1f, \
     \"min_rps\": %.1f, \"gates_enforced\": %b},\n\
    \  \"isolation\": {\"anomalies\": %d, \"lost_updates\": %d, \
     \"shared_initial\": %d, \"shared_final\": %d, \"committed\": %d, \
     \"conflicts\": %d},\n\
    \  \"group_commit\": {\"wal_commits\": %d, \"wal_fsyncs\": %d, \
     \"fsyncs_per_commit\": %.3f, \"bound\": %.1f}\n\
     }\n"
    n_docs seed cores clients ops requests wall_s throughput p50_ms p99_ms
    max_p99_ms min_throughput_rps enforced anomalies lost initial final
    committed conflicts wal_commits wal_fsyncs fsync_ratio max_fsync_per_commit;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  if Array.exists (String.equal "--client") Sys.argv then begin
    client_main ();
    exit 0
  end;
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 200 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let clients = max 8 (arg_value "--clients" 8 int_of_string) in
  let ops = arg_value "--ops" 150 int_of_string in
  let json_path = arg_value "--json" "BENCH_serve.json" Fun.id in
  let cores = Domain.recommended_domain_count () in
  let mem = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  (* expected row counts, computed once on the in-memory twin *)
  let expected =
    let engine = Engine.generate mem in
    List.map
      (fun (_, src) ->
        Soqm_algebra.Relation.cardinality
          (Engine.run_optimized engine src).Engine.result)
      queries
  in
  with_temp_dir "soqm_serve_db" @@ fun db_dir ->
  Db.save mem db_dir;
  let db = Db.open_disk db_dir in
  let paras = Object_store.extent db.Db.store "Paragraph" in
  if List.length paras < clients + 1 then
    failwith "not enough paragraphs for the client count";
  let shared = List.hd paras in
  let owns = Array.of_list (List.filteri (fun i _ -> i >= 1 && i <= clients) paras) in
  (* seed every counter cell to 0 before the fork *)
  Object_store.set_prop db.Db.store shared "number" (Value.Int 0);
  Array.iter (fun o -> Object_store.set_prop db.Db.store o "number" (Value.Int 0)) owns;
  let base_commits = Counters.wal_commits (Db.counters db) in
  let base_fsyncs = Counters.wal_fsyncs (Db.counters db) in
  (* bind before forking: children's connects queue in the backlog *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  with_temp_dir "soqm_serve_out" @@ fun out_dir ->
  Printf.printf
    "serve bench (n_docs=%d, %d clients x %d ops, %d core(s), port %d)\n"
    n_docs clients ops cores port;
  flush stdout;
  let expected_csv = String.concat "," (List.map string_of_int expected) in
  let exe = Sys.executable_name in
  let pids =
    List.init clients (fun i ->
        let out_path = Filename.concat out_dir (Printf.sprintf "client%d.txt" i) in
        Unix.create_process exe
          [|
            exe; "--client";
            "--client-port"; string_of_int port;
            "--client-ops"; string_of_int ops;
            "--client-shared-id"; string_of_int (Oid.id shared);
            "--client-own-id"; string_of_int (Oid.id owns.(i));
            "--client-out"; out_path;
            "--client-expected"; expected_csv;
          |]
          Unix.stdin Unix.stdout Unix.stderr)
  in
  let server = Server.create ~listen:sock ~sessions:clients db in
  let t0 = Unix.gettimeofday () in
  let server_domain = Domain.spawn (fun () -> Server.serve server) in
  let statuses =
    List.map
      (fun pid ->
        let _, status = Unix.waitpid [] pid in
        status)
      pids
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Server.stop server;
  Domain.join server_domain;
  (* aggregate the client reports *)
  let committed = ref 0
  and conflicts = ref 0
  and anomalies = ref 0
  and all_lats = ref [] in
  let own_ok = ref true in
  List.iteri
    (fun i _ ->
      let c, cf, a, own_final, lats =
        read_client_file (Filename.concat out_dir (Printf.sprintf "client%d.txt" i))
      in
      committed := !committed + c;
      conflicts := !conflicts + cf;
      anomalies := !anomalies + a;
      all_lats := List.rev_append lats !all_lats;
      let stored =
        match Object_store.peek_prop db.Db.store owns.(i) "number" with
        | Value.Int v -> v
        | _ -> -1
      in
      if stored <> own_final then own_ok := false)
    pids;
  let final =
    match Object_store.peek_prop db.Db.store shared "number" with
    | Value.Int v -> v
    | _ -> -1
  in
  let lost = !committed - final in
  let wal_commits = Counters.wal_commits (Db.counters db) - base_commits in
  let wal_fsyncs = Counters.wal_fsyncs (Db.counters db) - base_fsyncs in
  let fsync_ratio =
    if wal_commits = 0 then infinity
    else float_of_int wal_fsyncs /. float_of_int wal_commits
  in
  let sorted = Array.of_list !all_lats in
  Array.sort compare sorted;
  let p50_ms = percentile sorted 0.50 *. 1000. in
  let p99_ms = percentile sorted 0.99 *. 1000. in
  let requests = Array.length sorted in
  let throughput = float_of_int requests /. wall_s in
  let enforced = cores >= min_cores_for_latency_gate in
  Db.close db;
  Printf.printf
    "  %d requests in %.2fs: %.0f req/s, p50 %.2fms, p99 %.2fms\n\
    \  shared counter %d -> %d (%d committed, %d conflicts)\n\
    \  %d WAL commits, %d fsyncs (%.3f fsyncs/commit)\n"
    requests wall_s throughput p50_ms p99_ms 0 final !committed !conflicts
    wal_commits wal_fsyncs fsync_ratio;
  check "every client exited cleanly"
    (List.for_all (fun s -> s = Unix.WEXITED 0) statuses);
  check "zero isolation anomalies" (!anomalies = 0);
  check "no lost updates on the shared counter" (lost = 0 && final >= 0);
  check "private cells match each client's last write" !own_ok;
  check "group commit coalesces (fsyncs/commit < 1)"
    (wal_commits > 0 && fsync_ratio < max_fsync_per_commit);
  if enforced then begin
    check "p99 latency within bound" (p99_ms <= max_p99_ms);
    check "throughput floor" (throughput >= min_throughput_rps)
  end
  else
    Printf.printf "note: %d core(s) < %d, latency/throughput gates recorded only\n"
      cores min_cores_for_latency_gate;
  write_json json_path ~n_docs ~seed ~cores ~clients ~ops ~requests ~wall_s
    ~throughput ~p50_ms ~p99_ms ~enforced ~anomalies:!anomalies ~lost ~initial:0
    ~final ~committed:!committed ~conflicts:!conflicts ~wal_commits ~wal_fsyncs
    ~fsync_ratio;
  Printf.printf "wrote %s\n" json_path;
  if assert_mode && !failures > 0 then exit 1
