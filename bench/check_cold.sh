#!/bin/sh
# Cold-start gate: build, run the unit suites, then assert the PR-9
# placement + persistent-index bounds at n_docs=10000 and refresh
# BENCH_cold.json: clustered path-query page reads >= 2x fewer than
# insertion order, image-backed derived restore >= 5x faster than the
# rebuild-from-extent baseline (both over the same materialization
# floor), zero divergence between the fast-opened database and the
# in-memory oracle on the EXP-A mix.  Single-core safe.  The 10k run
# takes several minutes; `dune runtest` carries the same binary at
# n_docs=2000 (locality + parity gates, speedup reported).
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
dune exec bench/cold.exe -- --assert --docs 10000 --json BENCH_cold.json "$@"
