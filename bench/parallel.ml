(* Morsel-driven parallel executor benchmark and CI gate.

   Runs the EXP-A operator mix (the same plans as bench/exec.ml) and
   checks three things:

   1. Zero divergence.  For every entry the parallel results at jobs=2
      and jobs=4 must [Relation.equal] the serial compiled result and
      the tuple-at-a-time interpreter's; the structural joins are
      additionally checked against the list-based [Naive] oracle and
      the worked EXP-A query against the logical reference evaluator.
      The oracles bound the parity sizes: [Naive]'s joins are O(n*m)
      nested list scans and the four-way materialized comparison on the
      quadratic-output entries allocates the full result four times, so
      parity runs at n_docs=800 (Naive joins at 200) regardless of
      [--docs] — the timing phase below still covers the full size with
      an exact row-count cross-check between all three drains.

   2. No serial regression.  The [~jobs:1] dispatch must stay within 5%
      of the plain block-stream drain (PR 3's single-thread path) on
      total time over the mix at full size — jobs=1 takes the identical
      streaming code path, so this guards the dispatch itself.

   3. Speedup.  Median ns/row speedup of jobs=4 over jobs=1 across the
      mix at n_docs=3200 must reach 1.8x.  This bound needs hardware:
      it is enforced only when [Domain.recommended_domain_count ()]
      reports at least 4 cores; on smaller hosts the measurement still
      runs and is reported, the JSON records
      ["speedup_gate_enforced": false], and the bound is skipped with a
      visible reason (divergence and regression checks always apply).

   Run with:     dune exec bench/parallel.exe
   Assert mode:  dune exec bench/parallel.exe -- --assert [--docs N]
                                                 [--seed N] [--json PATH]
   (exit code 1 when an enforced bound is violated)

   [--seed N] regenerates the databases from a different Datagen seed
   (default 42); shared across all benches.  Writes BENCH_parallel.json
   (same schema family as BENCH_exec.json). *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra
module P = Soqm_physical

let query_q =
  "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
   AND (p->document()).title == 'Query Optimization'"

let reps = 5
let min_median_speedup = 1.8
let jobs_hi = 4
let max_serial_regression = 1.05
let parity_docs = 800 (* materialized four-way comparison cap *)
let naive_docs = 200 (* the O(n*m) list-oracle cap *)

(* ------------------------------------------------------------------ *)
(* The operator mix (mirrors bench/exec.ml)                            *)
(* ------------------------------------------------------------------ *)

let ident a src base =
  P.Plan.MapOp (a, A.Restricted.OpIdent, [ A.Restricted.ORef src ], base)

let scan_p = P.Plan.FullScan ("p", "Paragraph")

let chain names src base =
  snd
    (List.fold_left
       (fun (src, plan) name -> (name, ident name src plan))
       (src, base) names)

let map_chain = chain [ "k1"; "k2"; "k3" ] "p" scan_p
let map_wide = chain [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6" ] "p" scan_p

let filter_plan =
  P.Plan.Filter
    (A.Restricted.CEq, A.Restricted.ORef "k1", A.Restricted.ORef "p", map_chain)

let hash_left = chain [ "a1"; "a2" ] "p" scan_p
let hash_right = chain [ "b1"; "b2" ] "q" (P.Plan.FullScan ("q", "Paragraph"))
let hash_join_plan = P.Plan.HashJoin ("a1", "b1", hash_left, hash_right)
let nat_left = chain [ "c1"; "c2" ] "p" scan_p
let nat_right = chain [ "d1" ] "p" scan_p
let natural_join_plan = P.Plan.NaturalJoin (nat_left, nat_right)

let nested_loop_plan =
  P.Plan.NestedLoop
    ( None,
      chain [ "x1" ] "d" (P.Plan.FullScan ("d", "Document")),
      chain [ "y1" ] "e" (P.Plan.FullScan ("e", "Document")) )

let union_plan = P.Plan.Union (map_chain, map_chain)

let never_filter base =
  P.Plan.Filter
    ( A.Restricted.CEq,
      A.Restricted.OConst (Value.Int 1),
      A.Restricted.OConst (Value.Int 2),
      base )

let diff_plan = P.Plan.Diff (map_chain, never_filter map_chain)
let project_plan = P.Plan.Project ([ "p" ], map_wide)

let entries schema =
  let worked_q =
    P.Plan.default_implementation
      (A.Translate.of_general
         (Soqm_vql.To_algebra.query_to_algebra schema query_q))
  in
  [
    ("full_scan", scan_p);
    ("map_chain", map_chain);
    ("map_wide", map_wide);
    ("filter", filter_plan);
    ("hash_join", hash_join_plan);
    ("natural_join", natural_join_plan);
    ("nested_loop", nested_loop_plan);
    ("union", union_plan);
    ("diff", diff_plan);
    ("project", project_plan);
    ("worked_q_naive", worked_q);
  ]

(* ------------------------------------------------------------------ *)
(* Parity: parallel = serial compiled = interpreted (= oracles)        *)
(* ------------------------------------------------------------------ *)

(* CEq key semantics for the Naive theta-join leg: Null never matches. *)
let hash_join_pred tup =
  match (List.assoc_opt "a1" tup, List.assoc_opt "b1" tup) with
  | Some Value.Null, _ | _, Some Value.Null -> false
  | Some a, Some b -> Value.equal a b
  | _ -> false

(* Entries with an exact list-based oracle: recompute the result from
   the materialized children with the seed [Naive] operators. *)
let naive_oracle ctx name =
  let run p = P.Exec.run ctx p in
  match name with
  | "hash_join" ->
    Some (A.Naive.join hash_join_pred (run hash_left) (run hash_right))
  | "natural_join" ->
    Some (A.Naive.natural_join (run nat_left) (run nat_right))
  | "union" -> Some (A.Naive.union (run map_chain) (run map_chain))
  | "diff" ->
    Some (A.Naive.diff (run map_chain) (run (never_filter map_chain)))
  | _ -> None

(* All four executors on one database; [naive] additionally holds the
   structural joins to the seed list oracle. *)
let divergent_on ctx db ~naive (name, plan) =
  let compiled = P.Exec.compile ctx plan in
  let serial = P.Exec.run_compiled ctx compiled in
  (not (A.Relation.equal serial (P.Exec.Interpreted.run ctx plan)))
  || List.exists
       (fun jobs ->
         not
           (A.Relation.equal serial
              (P.Exec.run_compiled ~jobs ~clamp:false ctx compiled)))
       [ 2; jobs_hi ]
  || (naive
     &&
     match naive_oracle ctx name with
     | Some oracle -> not (A.Relation.equal serial oracle)
     | None -> false)
  ||
  match name with
  | "worked_q_naive" ->
    not (A.Relation.equal serial (Engine.run_logical_reference db query_q))
  | _ -> false

let divergences ~seed ~n_docs schema =
  let db_of n = Db.create ~params:{ Datagen.default with n_docs = n; seed } () in
  let parity_db = db_of (min n_docs parity_docs) in
  let parity_ctx = Engine.exec_ctx parity_db in
  let naive_db = db_of (min n_docs naive_docs) in
  let naive_ctx = Engine.exec_ctx naive_db in
  List.filter_map
    (fun entry ->
      if
        divergent_on parity_ctx parity_db ~naive:false entry
        || divergent_on naive_ctx naive_db ~naive:true entry
      then Some (fst entry)
      else None)
    (entries schema)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let n = f () in
  (n, Unix.gettimeofday () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* PR 3's single-thread path: stream-count the block drain. *)
let drain_serial ctx compiled () =
  let b = P.Exec.open_compiled ctx compiled in
  let n = ref 0 in
  let rec go () =
    match b.P.Exec.next_block () with
    | Some rows ->
      n := !n + Array.length rows;
      go ()
    | None -> b.P.Exec.close_blocks ()
  in
  go ();
  !n

(* The jobs-dispatched path: jobs=1 degrades to the same streaming
   drain, jobs>1 materializes through the morsel-parallel evaluator. *)
let drain_jobs ctx compiled ~jobs () =
  if jobs <= 1 then drain_serial ctx compiled ()
  else Array.length (P.Exec.eval_parallel ctx ~jobs compiled)

let measure_side f =
  Gc.compact ();
  ignore (f ()) (* warm-up *);
  let rows = ref 0 in
  let times =
    List.init reps (fun _ ->
        let n, s = time f in
        rows := n;
        s)
  in
  (!rows, median times)

(* The serial-regression comparison times the *same* code path twice
   (jobs=1 dispatches to the plain drain), so measure the two sides
   interleaved rep by rep with alternating order — back-to-back blocks
   (or a fixed order) let GC debt from one side's run land on the
   other's clock and masquerade as a dispatch cost against the 5%
   bound.  Each side reports its median (for the table) and its minimum
   (for the regression ratio: the min of two identical code paths is
   far less sensitive to interference on a busy host). *)
let measure_interleaved fa fb =
  Gc.compact ();
  ignore (fa ());
  ignore (fb ()) (* warm-ups *);
  let ra = ref 0 and rb = ref 0 in
  let ta = ref [] and tb = ref [] in
  for i = 1 to reps do
    let first, second = if i mod 2 = 0 then (fb, fa) else (fa, fb) in
    let sw = i mod 2 = 0 in
    let n1, s1 = time first in
    let n2, s2 = time second in
    let (na, sa), (nb, sb) =
      if sw then ((n2, s2), (n1, s1)) else ((n1, s1), (n2, s2))
    in
    ra := na;
    ta := sa :: !ta;
    rb := nb;
    tb := sb :: !tb
  done;
  let mn xs = List.fold_left Float.min Float.infinity xs in
  ((!ra, median !ta, mn !ta), (!rb, median !tb, mn !tb))

type entry_result = {
  name : string;
  rows : int;
  serial_min : float; (* plain block drain, fastest rep *)
  jobs1_s : float; (* via the jobs dispatch, median seconds *)
  jobs1_min : float;
  par_s : float; (* jobs = jobs_hi, median seconds *)
  speedup : float; (* jobs1_s / par_s *)
}

let measure_entry ctx (name, plan) =
  let compiled = P.Exec.compile ctx plan in
  let (rows_s, _, serial_min), (rows_1, jobs1_s, jobs1_min) =
    measure_interleaved (drain_serial ctx compiled)
      (drain_jobs ctx compiled ~jobs:1)
  in
  let rows_p, par_s = measure_side (drain_jobs ctx compiled ~jobs:jobs_hi) in
  (* the three drains must agree exactly on cardinality at full size *)
  assert (rows_s = rows_1 && rows_1 = rows_p);
  { name; rows = rows_p; serial_min; jobs1_s; jobs1_min; par_s;
    speedup = jobs1_s /. par_s }

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_parallel.json)                                 *)
(* ------------------------------------------------------------------ *)

let per_row r t = t /. float_of_int (max 1 r.rows) *. 1e9

let write_json path ~n_docs ~paras ~seed ~cores ~enforced results
    ~median_speedup ~serial_ratio ~divergences =
  let oc = open_out path in
  let entry r =
    Printf.sprintf
      "    {\"name\": %S, \"rows\": %d, \"jobs1_ns_per_row\": %.1f, \
       \"jobs%d_ns_per_row\": %.1f, \"speedup\": %.2f}"
      r.name r.rows (per_row r r.jobs1_s) jobs_hi (per_row r r.par_s)
      r.speedup
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"parallel\",\n\
    \  \"n_docs\": %d,\n\
    \  \"paragraphs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"block_size\": %d,\n\
    \  \"morsel_size\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"entries\": [\n%s\n  ],\n\
    \  \"median_speedup\": %.2f,\n\
    \  \"serial_regression\": %.3f,\n\
    \  \"divergences\": %d,\n\
    \  \"speedup_gate_enforced\": %b\n\
     }\n"
    n_docs paras seed P.Exec.block_size P.Exec.morsel_size jobs_hi cores reps
    (String.concat ",\n" (List.map entry results))
    median_speedup serial_ratio (List.length divergences) enforced;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 3200 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_parallel.json" Fun.id in
  let cores = Domain.recommended_domain_count () in
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let ctx = Engine.exec_ctx db in
  let schema = Object_store.schema db.Db.store in
  let paras = Object_store.extent_size db.Db.store "Paragraph" in
  Printf.printf
    "morsel-parallel vs serial compiled (n_docs=%d, %d paragraphs, \
     morsel=%d, jobs=%d, %d core(s) available)\n"
    n_docs paras P.Exec.morsel_size jobs_hi cores;
  Printf.printf
    "parity: 4 executors at n_docs=%d, Naive join oracle at n_docs=%d\n"
    (min n_docs parity_docs) (min n_docs naive_docs);
  let diverged = divergences ~seed ~n_docs schema in
  Printf.printf "%-16s %10s %13s %13s %9s\n" "operator" "rows" "jobs1 ns/row"
    (Printf.sprintf "jobs%d ns/row" jobs_hi)
    "speedup";
  let results = List.map (measure_entry ctx) (entries schema) in
  List.iter
    (fun r ->
      Printf.printf "%-16s %10d %13.1f %13.1f %8.2fx%s\n" r.name r.rows
        (per_row r r.jobs1_s) (per_row r r.par_s) r.speedup
        (if List.mem r.name diverged then "  DIVERGED" else ""))
    results;
  let median_speedup = median (List.map (fun r -> r.speedup) results) in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. results in
  let serial_ratio =
    total (fun r -> r.jobs1_min) /. total (fun r -> r.serial_min)
  in
  let enforced = cores >= jobs_hi in
  Printf.printf "\nmedian speedup at jobs=%d: %.2fx (bound %.1fx%s)\n" jobs_hi
    median_speedup min_median_speedup
    (if enforced then "" else ", NOT enforced on this host");
  Printf.printf "jobs=1 total vs plain serial drain: %.3fx (bound %.2fx)\n"
    serial_ratio max_serial_regression;
  write_json json_path ~n_docs ~paras ~seed ~cores ~enforced results
    ~median_speedup ~serial_ratio ~divergences:diverged;
  Printf.printf "wrote %s\n" json_path;
  let failed = ref false in
  if diverged <> [] then begin
    Printf.printf "FAIL: %d entries diverged between executors: %s\n"
      (List.length diverged)
      (String.concat ", " diverged);
    failed := true
  end;
  if serial_ratio > max_serial_regression then begin
    Printf.printf
      "FAIL: jobs=1 dispatch is %.3fx the plain serial drain (bound %.2fx)\n"
      serial_ratio max_serial_regression;
    failed := true
  end;
  if enforced then begin
    if median_speedup < min_median_speedup then begin
      Printf.printf "FAIL: median speedup %.2fx below the %.1fx bound\n"
        median_speedup min_median_speedup;
      failed := true
    end
  end
  else
    Printf.printf
      "SKIP: speedup bound needs >= %d cores, host reports %d (divergence \
       and serial-regression checks still enforced)\n"
      jobs_hi cores;
  if not !failed then
    Printf.printf "OK: %d/%d results identical under jobs in {2,%d}%s\n"
      (List.length results - List.length diverged)
      (List.length results) jobs_hi
      (if enforced then
         Printf.sprintf ", median parallel speedup %.2fx" median_speedup
       else "");
  if !failed && assert_mode then exit 1
