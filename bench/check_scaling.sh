#!/bin/sh
# CI gate: tier-1 build + tests, then the evaluator scaling assertions
# (growth exponent < 1.6 across n_docs in {50,200,800,3200}, and the
# hash-based logical evaluator at least 5x faster than the retained seed
# list operators at n_docs=800).  Exit code is non-zero on any failure.
#
# Pass --seed N (default 42) to regenerate the databases from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/scaling.exe -- --assert "$@"
