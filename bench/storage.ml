(* Disk storage subsystem benchmark and CI gate.

   Exercises the PR-5 paged store ([Soqm_disk]) end to end:

   1. Cold scans: time a full [Store.scan_all] of a saved database
      through a deliberately small buffer pool, with and without the
      prefetching helper domain.  On hosts with >= 2 cores the
      prefetched scan must be >= 1.5x faster (I/O overlapped with
      record decoding); on single-core hosts the bound is recorded but
      not enforced, mirroring the speedup gate of bench/parallel.ml.

   2. Query parity: the EXP-A query mix on a database opened from disk
      ([Db.open_disk]) must return results identical to the in-memory
      database it was saved from — zero divergences.

   3. Buffer pool locality: with the pool sized at HALF the database's
      data pages, a repeated working-set mix (worked query Q, title
      lookup, a Section full scan, point fetches of every Document)
      must be served >= 90% from resident frames.

   4. Crash recovery: replaying a few hundred committed, uncheckpointed
      WAL batches on open must recover every batch and finish within a
      generous wall-clock bound.

   Run with:     dune exec bench/storage.exe
   Assert mode:  dune exec bench/storage.exe -- --assert [--docs N] [--seed N]
   (exit code 1 when a bound is violated)

   Emits BENCH_storage.json; [--seed N] is shared across all benches. *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra
module Store = Soqm_disk.Store
module Wal = Soqm_disk.Wal

(* the EXP-A mix of bench/dml.ml *)
let queries =
  [
    ( "worked example Q (E1+E2+E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'" );
    ( "title lookup (E2)",
      "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'" );
    ( "large paragraphs (Implications)",
      "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" );
    ( "section/document join (E3/E4)",
      "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
       WHERE s.document == d AND d.title == 'Query Optimization'" );
    ( "text containment (E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation')" );
  ]

(* gates *)
let min_prefetch_speedup = 1.5
let min_hit_rate = 0.90
let max_replay_ms = 5000.
let recovery_batches = 300

let failures = ref 0

let check name ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %s\n" name)
  else Printf.printf "ok   %s\n" name

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let with_temp_dir prefix f =
  let dir = Filename.temp_file prefix ".db" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun entry -> Sys.remove (Filename.concat dir entry))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

(* ------------------------------------------------------------------ *)
(* Phase 1: cold scans, prefetched vs plain                            *)
(* ------------------------------------------------------------------ *)

(* A fresh [open_dir] per repetition keeps the buffer pool cold; the
   64-frame pool is far below the data size, so every page of the scan
   goes through a segment read that the helper domain can overlap. *)
let cold_scan_ms ~prefetch ~reps dir =
  let best = ref infinity in
  let rows = ref 0 in
  for _ = 1 to reps do
    let d = Store.open_dir ~pool_pages:64 dir in
    let (records, _pages), dt =
      time (fun () -> Store.scan_all ~prefetch d)
    in
    Store.close ~checkpoint:false d;
    rows := List.length records;
    if dt < !best then best := dt
  done;
  (!best *. 1000., !rows)

(* ------------------------------------------------------------------ *)
(* Phase 4: WAL recovery replay                                        *)
(* ------------------------------------------------------------------ *)

let recovery_replay_ms ~schema =
  with_temp_dir "soqm_storage_rec" (fun dir ->
      let d = Store.create ~schema dir in
      for i = 0 to recovery_batches - 1 do
        let oid = Oid.make ~cls:"Document" ~id:(1_000_000 + i) in
        Store.apply d
          [
            Wal.Insert
              {
                oid;
                props =
                  [
                    ("title", Value.Str (Printf.sprintf "recovered doc %d" i));
                  ];
              };
            Wal.Update
              {
                oid;
                prop = "word_total";
                value = Value.Int (i * 7);
                old_value = Value.Null;
              };
          ]
      done;
      (* crash: dirty pool pages are dropped, only the WAL survives *)
      Store.close ~checkpoint:false d;
      let d', dt = time (fun () -> Store.open_dir dir) in
      let recovered = Store.recovered_batches d' in
      Store.close ~checkpoint:false d';
      (dt *. 1000., recovered))

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_storage.json)                                  *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~paras ~seed ~cores ~total_pages ~plain_ms
    ~prefetch_ms ~speedup ~prefetch_enabled ~enforced ~divergences ~pool_frames
    ~pool_hits ~pages_read ~hit_rate ~replay_ms ~recovered =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"storage\",\n\
    \  \"n_docs\": %d,\n\
    \  \"paragraphs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"total_data_pages\": %d,\n\
    \  \"cold_scan\": {\"plain_ms\": %.1f, \"prefetch_ms\": %.1f, \
     \"speedup\": %.2f, \"bound\": %.2f, \"prefetch_enabled\": %b, \
     \"speedup_gate_enforced\": %b},\n\
    \  \"parity_divergences\": %d,\n\
    \  \"pool\": {\"pool_pages\": %d, \"hits\": %d, \"page_reads\": %d, \
     \"hit_rate\": %.3f, \"bound\": %.2f},\n\
    \  \"recovery\": {\"batches\": %d, \"recovered\": %d, \"replay_ms\": \
     %.1f, \"bound_ms\": %.0f}\n\
     }\n"
    n_docs paras seed cores total_pages plain_ms prefetch_ms speedup
    min_prefetch_speedup prefetch_enabled enforced divergences pool_frames
    pool_hits pages_read hit_rate min_hit_rate recovery_batches recovered
    replay_ms max_replay_ms;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 800 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_storage.json" Fun.id in
  let reps = arg_value "--reps" 3 int_of_string in
  let cores = Domain.recommended_domain_count () in
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let paras = Object_store.extent_size db.Db.store "Paragraph" in
  with_temp_dir "soqm_storage" @@ fun dir ->
  let (), dt_save = time (fun () -> Db.save db dir) in
  (* page geometry of the saved image *)
  let total_pages =
    let d = Store.open_dir dir in
    let n = Store.total_data_pages d in
    Store.close ~checkpoint:false d;
    n
  in
  Printf.printf
    "storage bench (n_docs=%d, %d paragraphs, %d data pages, %d core(s))\n"
    n_docs paras total_pages cores;
  Printf.printf "saved database in %.1f ms\n\n" (dt_save *. 1000.);

  (* -- cold scans ------------------------------------------------- *)
  let plain_ms, rows_plain = cold_scan_ms ~prefetch:false ~reps dir in
  let prefetch_ms, rows_pre = cold_scan_ms ~prefetch:true ~reps dir in
  (* on a single-core host the store auto-disables the helper domain, so
     both timings run the identical loop: report 1.0x rather than timing
     noise between two runs of the same code *)
  let prefetch_enabled = Store.prefetch_usable () in
  let speedup = if prefetch_enabled then plain_ms /. prefetch_ms else 1.0 in
  let enforced = assert_mode && cores >= 2 in
  Printf.printf
    "cold scan of %d records: plain %.1f ms, prefetched %.1f ms (%.2fx, \
     bound %.1fx %s%s)\n"
    rows_plain plain_ms prefetch_ms speedup min_prefetch_speedup
    (if enforced then "enforced" else "not enforced on this host")
    (if prefetch_enabled then "" else "; prefetch auto-disabled, <2 cores");
  check "prefetched and plain cold scans decode the same records"
    (rows_plain = rows_pre);
  if enforced then
    check
      (Printf.sprintf "prefetched cold scan >= %.1fx over plain"
         min_prefetch_speedup)
      (speedup >= min_prefetch_speedup);

  (* -- parity + pool locality on one attached database ------------ *)
  let pool_frames = max 8 (total_pages / 2) in
  let ddb = Db.open_disk ~pool_pages:pool_frames dir in
  let dstore =
    match ddb.Db.disk with
    | Some d -> d
    | None -> failwith "open_disk did not attach a store"
  in
  let mem_engine = Engine.generate db in
  let disk_engine = Engine.generate ddb in
  let divergences =
    List.fold_left
      (fun acc (name, q) ->
        let mem = Engine.run_optimized mem_engine q in
        let disk = Engine.run_optimized disk_engine q in
        let same = A.Relation.equal mem.Engine.result disk.Engine.result in
        check (Printf.sprintf "%s: disk == memory" name) same;
        if same then acc else acc + 1)
      0 queries
  in

  (* working-set mix: two optimized queries, one unoptimizable full
     scan, and a point fetch of every Document record.  The pool holds
     half the database, the mix's working set is much smaller, so after
     the first round every page request should find a resident frame. *)
  let docs = Store.extent dstore "Document" in
  let rounds = 20 in
  Counters.reset_storage (Store.counters dstore);
  let (), dt_mix =
    time (fun () ->
        for _ = 1 to rounds do
          ignore (Engine.run_optimized disk_engine (snd (List.hd queries)));
          ignore
            (Engine.run_optimized disk_engine
               "ACCESS d FROM d IN Document WHERE d.title == 'Query \
                Optimization'");
          ignore (Engine.run_optimized disk_engine "ACCESS s FROM s IN Section");
          List.iter (fun oid -> ignore (Store.fetch dstore oid)) docs
        done)
  in
  let c = Store.counters dstore in
  let pool_hits = Counters.pool_hits c in
  let pages_read = Counters.pages_read c in
  let hit_rate =
    float_of_int pool_hits /. float_of_int (max 1 (pool_hits + pages_read))
  in
  Printf.printf
    "\npool locality over %d rounds (%d frames = half of %d pages): %d \
     hit(s), %d page read(s), %.1f%% hit rate in %.1f ms\n"
    rounds pool_frames total_pages pool_hits pages_read (100. *. hit_rate)
    (dt_mix *. 1000.);
  check
    (Printf.sprintf "pool hit rate >= %.0f%% with pool at half the data size"
       (100. *. min_hit_rate))
    (hit_rate >= min_hit_rate);
  Db.close ddb;

  (* -- recovery replay -------------------------------------------- *)
  let replay_ms, recovered =
    recovery_replay_ms ~schema:(Object_store.schema db.Db.store)
  in
  Printf.printf "\nrecovery: %d/%d batches replayed in %.1f ms\n" recovered
    recovery_batches replay_ms;
  check "recovery replays every committed batch"
    (recovered = recovery_batches);
  if assert_mode then
    check
      (Printf.sprintf "recovery replay <= %.0f ms" max_replay_ms)
      (replay_ms <= max_replay_ms);

  write_json json_path ~n_docs ~paras ~seed ~cores ~total_pages ~plain_ms
    ~prefetch_ms ~speedup ~prefetch_enabled ~enforced ~divergences ~pool_frames
    ~pool_hits ~pages_read ~hit_rate ~replay_ms ~recovered;
  Printf.printf "wrote %s\n" json_path;
  if !failures > 0 then (
    Printf.printf "\n%d check(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "\nall checks passed\n"
