(* Columnar storage + fused kernels: the storage-to-kernel hot path on
   the scan/filter/map subset of the EXP-A mix.

   Each entry times the whole pre-PR pipeline against the new one, at
   the same n_docs:

     baseline  = row-slotted [Store.scan] (decode every record slot by
                 slot) + the unfused compiled plan — the pre-PR path
                 bench/exec.ml records in BENCH_exec.json
     columnar  = [Store.scan_columns] over a vacuumed columnar segment
                 (decode only the columns the query touches) + the
                 fused select/map/project kernel

   ns/row is normalized by the scanned extent (paragraphs), so the two
   sides divide by the same denominator.  Result sets are compared
   untimed across the interpreted, unfused, fused-serial and
   fused-parallel executors: any divergence fails the gate.

   The byte gate reads the storage counters: a selective scan of one
   dictionary-encoded string column (Document.author, 7 distinct
   values) must decode >= 3x fewer bytes than the row-format full-record
   scan of the same class.  Both sides are also reported for the
   EXPERIMENTS.md EXP-L vacuum before/after comparison.

   Run with:     dune exec bench/columnar.exe
   Assert mode:  dune exec bench/columnar.exe -- --assert [--docs N]
                                                 [--seed N] [--json PATH]
   (exit code 1 when the median storage-to-kernel speedup < 2x, the
   dictionary-column byte ratio < 3x, or any result diverges)

   All gates are single-core-safe: timing compares two serial pipelines
   on the same core, and the parallel fused speedup is recorded in the
   JSON but only informational (conditional on cores, like PR 4/5). *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra
module P = Soqm_physical
module D = Soqm_disk

let reps = 5
let min_median_speedup = 2.0
let min_bytes_ratio = 3.0

(* ------------------------------------------------------------------ *)
(* The scan/filter/map subset                                          *)
(* ------------------------------------------------------------------ *)

let ident a src base =
  P.Plan.MapOp (a, A.Restricted.OpIdent, [ A.Restricted.ORef src ], base)

let chain names src base =
  snd
    (List.fold_left
       (fun (src, plan) name -> (name, ident name src plan))
       (src, base) names)

let scan_p = P.Plan.FullScan ("p", "Paragraph")

(* Each entry names the Paragraph columns its chain touches: the
   columnar side decodes exactly those, the row side always decodes
   whole records — that asymmetry is the storage half of the win. *)
let entries =
  [
    (* whole-record materialization: the columnar side still decodes
       every column, so this entry isolates the chunk-vs-slot codec
       difference *)
    ( "full_scan",
      scan_p,
      [ "number"; "section"; "content"; "word_count" ] );
    (* pure executor chains over a narrow carrier column *)
    ("map_chain", chain [ "k1"; "k2"; "k3" ] "p" scan_p, [ "number" ]);
    ( "map_wide",
      chain [ "m1"; "m2"; "m3"; "m4"; "m5"; "m6" ] "p" scan_p,
      [ "number" ] );
    (* select on a derived column: map + filter fuse into one kernel *)
    ( "filter_wc",
      P.Plan.Filter
        ( A.Restricted.CGt,
          A.Restricted.ORef "wc",
          A.Restricted.OConst (Value.Int 500),
          P.Plan.MapProp ("wc", "word_count", "p", scan_p) ),
      [ "word_count" ] );
    (* select -> map -> project: the full fused-chain shape *)
    ( "sel_map_proj",
      P.Plan.Project
        ( [ "c" ],
          P.Plan.Filter
            ( A.Restricted.CGt,
              A.Restricted.ORef "wc",
              A.Restricted.OConst (Value.Int 250),
              P.Plan.MapProp
                ( "c",
                  "content",
                  "p",
                  P.Plan.MapProp ("wc", "word_count", "p", scan_p) ) ) ),
      [ "content"; "word_count" ] );
  ]

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Minimum over reps, not median: external load (dune runs the other
   test suites concurrently with this gate on the CI box) only ever
   *adds* time, so the min is the robust estimator of a pipeline's own
   cost.  Both sides use the same estimator, so the ratio stays fair. *)
let measure_side f =
  Gc.compact ();
  ignore (f ()) (* warm-up *);
  List.fold_left min infinity (List.init reps (fun _ -> time f))

let drain_compiled ctx compiled () =
  let b = P.Exec.open_compiled ctx compiled in
  let n = ref 0 in
  let rec go () =
    match b.P.Exec.next_block () with
    | Some rows ->
      n := !n + Array.length rows;
      go ()
    | None -> b.P.Exec.close_blocks ()
  in
  go ();
  !n

type entry_result = {
  name : string;
  out_rows : int;
  baseline_ns : float;  (* row decode + unfused kernel, per extent row *)
  columnar_ns : float;  (* column decode + fused kernel, per extent row *)
  speedup : float;
  diverged : bool;
}

(* The row-format decode is the same [Store.scan] whatever the query,
   and several entries share a column set — measure each distinct
   decode once (lower variance than re-timing a 40ms scan per entry)
   and combine with the per-entry kernel times. *)
let decode_times ~row_store ~col_store entries =
  let t_row = measure_side (fun () -> D.Store.scan row_store "Paragraph") in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, _, cols) ->
      if not (Hashtbl.mem tbl cols) then
        Hashtbl.add tbl cols
          (measure_side (fun () ->
               D.Store.scan_columns col_store "Paragraph" cols)))
    entries;
  (t_row, Hashtbl.find tbl)

let measure_entry ctx ~t_row_decode ~t_col_decode ~extent_rows ~jobs
    (name, plan, cols) =
  let fused = P.Exec.compile ctx plan in
  let unfused = P.Exec.compile ~fuse:false ctx plan in
  (* correctness first, untimed: interpreted (Naive) = unfused = fused
     serial = fused parallel *)
  let r_interp = P.Exec.Interpreted.run ctx plan in
  let r_unfused = P.Exec.run_compiled ctx unfused in
  let r_fused = P.Exec.run_compiled ctx fused in
  let r_parallel = P.Exec.run_compiled ~jobs:(max 2 jobs) ~clamp:false ctx fused in
  let diverged =
    not
      (A.Relation.equal r_interp r_unfused
      && A.Relation.equal r_interp r_fused
      && A.Relation.equal r_interp r_parallel)
  in
  let t_unfused = measure_side (drain_compiled ctx unfused) in
  let t_fused = measure_side (drain_compiled ctx fused) in
  let per_row t = t /. float_of_int (max 1 extent_rows) *. 1e9 in
  let baseline = t_row_decode +. t_unfused in
  let columnar = t_col_decode cols +. t_fused in
  {
    name;
    out_rows = A.Relation.cardinality r_fused;
    baseline_ns = per_row baseline;
    columnar_ns = per_row columnar;
    speedup = baseline /. columnar;
    diverged;
  }

(* ------------------------------------------------------------------ *)
(* Byte gate: dictionary-encoded string column                         *)
(* ------------------------------------------------------------------ *)

type bytes_result = {
  row_full_bytes : int;  (* row format, whole-record scan *)
  row_sel_bytes : int;  (* row format, selective scan (still row-priced) *)
  col_sel_bytes : int;  (* columnar, one dictionary string column *)
  row_values : int;
  col_values : int;
  ratio : float;
}

(* [bytes_read] / [values_decoded] live in the storage counter family
   (cumulative across a workload), so each leg resets that family
   explicitly rather than relying on the per-run [Counters.reset]. *)
let measure_bytes ~row_store ~col_store =
  let row_cnt = D.Store.counters row_store in
  let col_cnt = D.Store.counters col_store in
  Counters.reset_storage row_cnt;
  ignore (D.Store.scan row_store "Document");
  let row_full_bytes = Counters.bytes_read row_cnt in
  let row_values = Counters.values_decoded row_cnt in
  Counters.reset_storage row_cnt;
  ignore (D.Store.scan_columns row_store "Document" [ "author" ]);
  let row_sel_bytes = Counters.bytes_read row_cnt in
  Counters.reset_storage col_cnt;
  ignore (D.Store.scan_columns col_store "Document" [ "author" ]);
  let col_sel_bytes = Counters.bytes_read col_cnt in
  let col_values = Counters.values_decoded col_cnt in
  {
    row_full_bytes;
    row_sel_bytes;
    col_sel_bytes;
    row_values;
    col_values;
    ratio = float_of_int row_full_bytes /. float_of_int (max 1 col_sel_bytes);
  }

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_columnar.json)                                 *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~paras ~seed ~cores ~jobs results bytes
    ~median_speedup ~parallel_speedup =
  let oc = open_out path in
  let entry r =
    Printf.sprintf
      "    {\"name\": %S, \"out_rows\": %d, \"baseline_ns_per_row\": %.1f, \
       \"columnar_ns_per_row\": %.1f, \"speedup\": %.2f, \"diverged\": %b}"
      r.name r.out_rows r.baseline_ns r.columnar_ns r.speedup r.diverged
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"columnar\",\n\
    \  \"n_docs\": %d,\n\
    \  \"paragraphs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"entries\": [\n%s\n  ],\n\
    \  \"median_speedup\": %.2f,\n\
    \  \"parallel_fused_speedup\": %.2f,\n\
    \  \"dict_column\": {\"class\": \"Document\", \"column\": \"author\", \
     \"row_full_bytes\": %d, \"row_selective_bytes\": %d, \
     \"columnar_selective_bytes\": %d, \"row_values_decoded\": %d, \
     \"columnar_values_decoded\": %d, \"bytes_ratio\": %.2f},\n\
    \  \"divergences\": %d\n\
     }\n"
    n_docs paras seed cores jobs reps
    (String.concat ",\n" (List.map entry results))
    median_speedup parallel_speedup bytes.row_full_bytes bytes.row_sel_bytes
    bytes.col_sel_bytes bytes.row_values bytes.col_values bytes.ratio
    (List.length (List.filter (fun r -> r.diverged) results));
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 800 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_columnar.json" Fun.id in
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let ctx = Engine.exec_ctx db in
  let paras = Object_store.extent_size db.Db.store "Paragraph" in
  let cores = Domain.recommended_domain_count () in
  (* worker count for the parallel-fused side: capped at the cores the
     host can actually run; a single-core host measures jobs=1, i.e. the
     identical serial path, and reports ~1.0x instead of handoff noise *)
  let jobs = max 1 (min 4 cores) in
  (* two on-disk images of the same database: one left row-slotted, one
     vacuumed to columnar segments *)
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "soqm_bench_columnar_%d" (Unix.getpid ()))
  in
  let dir_row = base ^ "_row" and dir_col = base ^ "_col" in
  rm_rf dir_row;
  rm_rf dir_col;
  Db.save db dir_row;
  Db.save db dir_col;
  let row_store = D.Store.open_dir ~counters:(Counters.create ()) dir_row in
  let col_store = D.Store.open_dir ~counters:(Counters.create ()) dir_col in
  List.iter
    (fun cls -> ignore (D.Store.vacuum col_store cls))
    [ "Document"; "Section"; "Paragraph" ];
  Printf.printf
    "columnar storage + fused kernels vs row pages + unfused (n_docs=%d, %d \
     paragraphs)\n"
    n_docs paras;
  Printf.printf "%-14s %9s %17s %17s %9s\n" "entry" "out rows"
    "baseline ns/row" "columnar ns/row" "speedup";
  let t_row_decode, t_col_decode = decode_times ~row_store ~col_store entries in
  let results =
    List.map
      (measure_entry ctx ~t_row_decode ~t_col_decode ~extent_rows:paras ~jobs)
      entries
  in
  List.iter
    (fun r ->
      Printf.printf "%-14s %9d %17.1f %17.1f %8.2fx%s\n" r.name r.out_rows
        r.baseline_ns r.columnar_ns r.speedup
        (if r.diverged then "  DIVERGED" else ""))
    results;
  let median_speedup = median (List.map (fun r -> r.speedup) results) in
  let divergences = List.filter (fun r -> r.diverged) results in
  (* parallel fused throughput on the heaviest chain — informational on
     a single core, a real speedup only when cores allow *)
  let parallel_speedup =
    if jobs <= 1 then
      (* single core: jobs=1 is the identical serial path, so the ratio
         would be pure timer noise — the executor's clamp makes the
         measured configuration and production behavior both serial *)
      1.0
    else
      let _, plan, _ = List.nth entries (List.length entries - 1) in
      let fused = P.Exec.compile ctx plan in
      let serial = measure_side (fun () -> P.Exec.run_compiled ctx fused) in
      let parallel =
        measure_side (fun () -> P.Exec.run_compiled ~jobs ctx fused)
      in
      serial /. parallel
  in
  let bytes = measure_bytes ~row_store ~col_store in
  Printf.printf
    "\ndict column Document.author: row full scan %d B, row selective %d B, \
     columnar selective %d B (%.1fx fewer; %d -> %d values)\n"
    bytes.row_full_bytes bytes.row_sel_bytes bytes.col_sel_bytes bytes.ratio
    bytes.row_values bytes.col_values;
  Printf.printf "median storage-to-kernel speedup: %.2fx (bound %.0fx)\n"
    median_speedup min_median_speedup;
  Printf.printf "parallel fused speedup (jobs=%d, %d cores): %.2fx\n" jobs
    cores parallel_speedup;
  write_json json_path ~n_docs ~paras ~seed ~cores ~jobs results bytes
    ~median_speedup ~parallel_speedup;
  Printf.printf "wrote %s\n" json_path;
  D.Store.close row_store;
  D.Store.close col_store;
  rm_rf dir_row;
  rm_rf dir_col;
  let failed = ref false in
  if divergences <> [] then begin
    Printf.printf "FAIL: %d entries diverged across executors: %s\n"
      (List.length divergences)
      (String.concat ", " (List.map (fun r -> r.name) divergences));
    failed := true
  end;
  if median_speedup < min_median_speedup then begin
    Printf.printf "FAIL: median speedup %.2fx below the %.0fx bound\n"
      median_speedup min_median_speedup;
    failed := true
  end;
  if bytes.ratio < min_bytes_ratio then begin
    Printf.printf "FAIL: dictionary-column byte ratio %.2fx below %.0fx\n"
      bytes.ratio min_bytes_ratio;
    failed := true
  end;
  if not !failed then
    Printf.printf
      "OK: columnar+fused %.2fx faster (median), %.1fx fewer bytes on the \
       dictionary column, %d/%d results identical\n"
      median_speedup bytes.ratio
      (List.length results - List.length divergences)
      (List.length results);
  if !failed && assert_mode then exit 1
