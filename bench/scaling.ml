(* Scaling micro-benchmark for the reference (logical) evaluator.

   Two checks, both runnable as CI assertions:

   1. Growth: times [Eval.run] — the hash-based logical evaluator — on
      the general-algebra term of the EXP-A worked example plus explicit
      join/natural-join/diff shapes at increasing database sizes, and
      checks that evaluation no longer scales quadratically in the number
      of paragraphs (the seed list evaluator sat at exponent ~2.0).

   2. Head-to-head: at n_docs = 800 the same relational work is evaluated
      with the retained seed operators ([Naive]) over identical
      materialized inputs; the hash evaluator must be at least 5x faster
      and [Relation.equal] must hold between both results at every size
      the naive side runs at.

   Run with:     dune exec bench/scaling.exe
   Assert mode:  dune exec bench/scaling.exe -- --assert [--seed N]
                                                [--json PATH]
   (exit code 1 when a bound is violated)

   [--seed N] regenerates the databases from a different Datagen seed
   (default 42); shared across all benches.

   [--json PATH] additionally writes the measured rows and fitted
   exponents as machine-readable JSON (same shape family as
   BENCH_exec.json), so the bench trajectory accumulates across PRs. *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra

let query_q =
  "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation') \
   AND (p->document()).title == 'Query Optimization'"

(* An explicit join over the same data: every (section, document) pair
   with matching document reference.  Under the seed list evaluator this
   was O(|Section| * |Document|); hash-based evaluation is linear. *)
let join_cond = Expr.(Binop (Eq, Prop (Ref "s", "document"), Ref "d"))

let join_term =
  A.General.Join
    (join_cond, A.General.Get ("s", "Section"), A.General.Get ("d", "Document"))

(* Self natural-join of the paragraph extent: output cardinality is
   linear, so any superlinear time is pure evaluator overhead. *)
let natjoin_term =
  A.General.NaturalJoin
    (A.General.Get ("p", "Paragraph"), A.General.Get ("p", "Paragraph"))

let small_select =
  A.General.Select
    ( Expr.(Binop (Le, Prop (Ref "p", "number"), Const (Value.Int 1))),
      A.General.Get ("p", "Paragraph") )

let diff_term = A.General.Diff (A.General.Get ("p", "Paragraph"), small_select)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* Best-of-n for the fast (hash) side: a single run is noisy enough at
   sub-second scale to flip the fitted exponent by ±0.15. *)
let time_best ?(n = 3) f =
  let rec go best x i =
    if i = 0 then (x, best)
    else
      let x', s = time f in
      go (Float.min best s) x' (i - 1)
  in
  let x, s = time f in
  go s x (n - 1)

let sizes = [ 50; 200; 800; 3200 ]

(* The naive side is only timed up to this size: the seed operators take
   minutes beyond it (that is the point of this PR). *)
let naive_max = 800

type row = {
  n_docs : int;
  paras : int;
  q_s : float;
  join_s : float;
  naive_join_s : float option; (* same work via [Naive], when affordable *)
}

let naive_suite store sections documents paragraphs selected =
  (* identical relational work to [join_term]/[natjoin_term]/[diff_term],
     evaluated with the retained seed list operators *)
  let pred tup =
    let binding r = List.assoc_opt r tup in
    Value.truthy (Runtime.eval (Runtime.env ~binding store) join_cond)
  in
  let j = A.Naive.join pred sections documents in
  let nj = A.Naive.natural_join paragraphs paragraphs in
  let d = A.Naive.diff paragraphs selected in
  (j, nj, d)

let hash_suite store sections documents paragraphs selected =
  ignore (sections, documents, paragraphs, selected);
  let j = A.Eval.run store join_term in
  let nj = A.Eval.run store natjoin_term in
  let d = A.Eval.run store diff_term in
  (j, nj, d)

let measure ~seed =
  List.map
    (fun n_docs ->
      let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
      let store = db.Db.store in
      let schema = Object_store.schema store in
      let q_term = Soqm_vql.To_algebra.query_to_algebra schema query_q in
      let _, q_s = time_best (fun () -> ignore (A.Eval.run store q_term)) in
      (* materialize the inputs once so both sides time pure operator work *)
      let sections = A.Eval.run store (A.General.Get ("s", "Section")) in
      let documents = A.Eval.run store (A.General.Get ("d", "Document")) in
      let paragraphs = A.Eval.run store (A.General.Get ("p", "Paragraph")) in
      let selected = A.Eval.run store small_select in
      let (hj, hnj, hd), join_s =
        time_best (fun () ->
            hash_suite store sections documents paragraphs selected)
      in
      let naive_join_s =
        if n_docs > naive_max then None
        else begin
          let (nj, nnj, nd), s =
            time (fun () ->
                naive_suite store sections documents paragraphs selected)
          in
          (* set-semantics agreement between the seed and hash operators *)
          assert (A.Relation.equal nj hj);
          assert (A.Relation.equal nnj hnj);
          assert (A.Relation.equal nd hd);
          Some s
        end
      in
      {
        n_docs;
        paras = Object_store.extent_size store "Paragraph";
        q_s;
        join_s;
        naive_join_s;
      })
    sizes

(* Fitted growth exponent between the two largest sizes: time should grow
   like paras^e; a hash-based evaluator keeps e well under 2 even with
   constant-factor noise, while the seed list evaluator sits at e ~= 2. *)
let exponent rows value =
  match List.rev rows with
  | b :: a :: _ ->
    log (value b /. value a) /. log (float b.paras /. float a.paras)
  | _ -> nan

let json_of_rows rows ~e_q ~e_join =
  let row r =
    let naive =
      match r.naive_join_s with
      | Some s -> Printf.sprintf "%.6f" s
      | None -> "null"
    in
    Printf.sprintf
      "    {\"n_docs\": %d, \"paragraphs\": %d, \"worked_q_s\": %.6f, \
       \"joins_s\": %.6f, \"naive_joins_s\": %s}"
      r.n_docs r.paras r.q_s r.join_s naive
  in
  Printf.sprintf
    "{\n\
    \  \"bench\": \"scaling\",\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"exponent_worked_q\": %.3f,\n\
    \  \"exponent_joins\": %.3f\n\
     }\n"
    (String.concat ",\n" (List.map row rows))
    e_q e_join

let arg_value flag parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> Some (parse v)
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let json_path = arg_value "--json" Fun.id in
  let seed =
    Option.value
      ~default:Datagen.default.Datagen.seed
      (arg_value "--seed" int_of_string)
  in
  let failed = ref false in
  Printf.printf "logical-evaluator scaling (reference interpreter, Eval.run)\n";
  Printf.printf "%8s %12s | %12s %12s %14s %9s\n" "docs" "paragraphs"
    "worked Q (s)" "joins (s)" "naive joins(s)" "speedup";
  let rows = measure ~seed in
  List.iter
    (fun r ->
      let naive, speedup =
        match r.naive_join_s with
        | Some s -> (Printf.sprintf "%14.4f" s, Printf.sprintf "%8.1fx" (s /. r.join_s))
        | None -> (Printf.sprintf "%14s" "-", Printf.sprintf "%9s" "-")
      in
      Printf.printf "%8d %12d | %12.4f %12.4f %s %s\n" r.n_docs r.paras r.q_s
        r.join_s naive speedup)
    rows;
  let e_q = exponent rows (fun r -> r.q_s) in
  let e_join = exponent rows (fun r -> r.join_s) in
  Printf.printf
    "\ngrowth exponent over the last size doubling: worked Q %.2f, joins %.2f\n"
    e_q e_join;
  (match json_path with
  | Some path ->
    let oc = open_out path in
    output_string oc (json_of_rows rows ~e_q ~e_join);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  let bound = 1.75 in
  if e_join > bound || e_q > bound then (
    Printf.printf "FAIL: evaluator scales superlinearly (bound %.2f)\n" bound;
    failed := true)
  else Printf.printf "OK: no quadratic blow-up (bound %.2f)\n" bound;
  (match
     List.find_opt (fun r -> r.n_docs = naive_max) rows
   with
  | Some ({ naive_join_s = Some naive_s; _ } as r) ->
    let speedup = naive_s /. r.join_s in
    let min_speedup = 5.0 in
    if speedup >= min_speedup then
      Printf.printf
        "OK: hash evaluator is %.1fx faster than the seed operators at \
         n_docs=%d (bound %.0fx)\n"
        speedup naive_max min_speedup
    else (
      Printf.printf
        "FAIL: hash evaluator only %.1fx faster than the seed operators at \
         n_docs=%d (bound %.0fx)\n"
        speedup naive_max min_speedup;
      failed := true)
  | _ ->
    Printf.printf "FAIL: no naive measurement at n_docs=%d\n" naive_max;
    failed := true);
  if !failed && assert_mode then exit 1
