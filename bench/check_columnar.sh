#!/bin/sh
# CI gate for the columnar storage-to-kernel hot path: tier-1 build +
# tests, then the columnar bench assertions on the scan/filter/map
# subset of the EXP-A operator mix at n_docs=800 —
#
#   * columnar decode (Store.scan_columns, only the referenced columns)
#     + fused select/map/project kernels must run >= 2x faster (median
#     ns/row, normalized by extent size) than the row-page decode
#     (Store.scan, whole-record codec) + unfused compiled pipeline;
#   * a selective scan of one dictionary-encoded string column
#     (Document.author) must read >= 3x fewer bytes_read than the row
#     full scan of the same class;
#   * zero result divergence across interpreted / unfused compiled /
#     fused serial / fused morsel-parallel executors.
#
# Both timed pipelines are serial, so the gates are single-core safe;
# the parallel fused speedup in the JSON is informational only.  Writes
# BENCH_columnar.json (with the Datagen seed and host core count in the
# header) next to this script's parent directory.  Exit code is non-zero
# on any failure.
#
# Pass --seed N (default 42) to regenerate the database from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/columnar.exe -- --assert --docs 800 --json BENCH_columnar.json "$@"
