#!/bin/sh
# Serving gate: build, run the unit suites, then assert the concurrent
# serving bounds (zero isolation anomalies across 8 client processes on
# the EXP-A mix plus DML, no lost updates on the shared counter, group
# commit coalescing under one fsync per committed batch; p99/throughput
# bounds on multi-core hosts) and refresh BENCH_serve.json.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
dune exec bench/serve.exe -- --assert --docs 200 --ops 150 --json BENCH_serve.json "$@"
