#!/bin/sh
# CI gate: tier-1 build + tests (which include the parallel QCheck
# parity suite and row-order determinism checks), then the morsel-driven
# parallel executor assertions on the EXP-A operator mix at n_docs=3200:
#
#   - zero result-set divergence between the parallel executor
#     (jobs in {2,4}), the serial compiled executor, the tuple-at-a-time
#     interpreter, the list-based Naive oracle (structural joins) and
#     the logical reference evaluator (worked EXP-A query);
#   - the jobs=1 dispatch within 5% of the plain serial block drain
#     (no single-thread regression over PR 3);
#   - median ns/row speedup >= 1.8x at --jobs 4 over --jobs 1.  The
#     speedup bound needs hardware: it is enforced only when the host
#     reports >= 4 cores (Domain.recommended_domain_count); on smaller
#     hosts the bench prints SKIP with the measured number and the JSON
#     records "speedup_gate_enforced": false.
#
# Writes BENCH_parallel.json (same schema family as BENCH_exec.json).
# Exit code is non-zero on any enforced-bound failure.
#
# Pass --seed N (default 42) to regenerate the database from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/parallel.exe -- --assert --docs 3200 --json BENCH_parallel.json "$@"
