#!/bin/sh
# CI gate: tier-1 build + tests, then the DML / incremental-maintenance
# assertions (>= 10% of paragraphs flipped across the wordCount > 500
# boundary with every E1-E5/Implications query equal to the
# rebuild-from-scratch oracle WITHOUT regenerating the optimizer, the
# maintained largeParagraphs sets equal to recomputation from base data,
# and a >= 90% plan-cache hit rate whose hits skip the search loop).
# Exit code is non-zero on any failure.
#
# Pass --seed N (default 42) to regenerate the database from another
# Datagen seed; the flag is shared by all bench executables.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/dml.exe -- --assert "$@"
