(* DML / incremental-maintenance benchmark and CI gate.

   Exercises the maintenance subsystem end to end:

   1. Correctness under updates: run every query class (E1-E5 plus the
      largeParagraphs implication) on a maintained database, apply an
      update workload that flips >= 10% of all paragraphs across the
      [wordCount > 500] boundary and rewrites their content words, then
      re-run each query on the SAME engine (no optimizer regeneration).
      Results must equal a rebuild-from-scratch oracle (the database
      saved, reloaded and re-derived from base data) and the logical
      reference evaluator.

   2. The maintained [largeParagraphs] sets must equal the sets
      recomputed from base data, member for member (query equality alone
      cannot catch spurious extra members).

   3. Plan cache: repeated queries must hit the epoch-guarded cache at a
      >= 90% rate, and a hit must return the identical (physically equal)
      optimization result, i.e. skip the search loop.

   4. Throughput tables for EXPERIMENTS.md: incremental maintenance vs
      full [Db.refresh] per update batch, and a mixed read/write
      workload.

   Run with:     dune exec bench/dml.exe
   Assert mode:  dune exec bench/dml.exe -- --assert [--docs N] [--seed N]
   (exit code 1 when a bound is violated)

   [--seed N] regenerates the database from a different Datagen seed
   (default 42); shared across all benches. *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra

(* one query per knowledge class; names follow Section 2.3 *)
let queries =
  [
    ( "worked example Q (E1+E2+E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'" );
    ( "title lookup (E2)",
      "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'" );
    ( "large paragraphs (Implications)",
      "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" );
    ( "section/document join (E3/E4)",
      "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
       WHERE s.document == d AND d.title == 'Query Optimization'" );
    ( "text containment (E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation')" );
  ]

let failures = ref 0

let check name ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %s\n" name)
  else Printf.printf "ok   %s\n" name

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Update workload: flip word counts across the 500 boundary, rewrite   *)
(* content words (through the DML API, so maintenance observes it)      *)
(* ------------------------------------------------------------------ *)

let flip_paragraphs engine store ~every =
  let paras = Array.of_list (Object_store.extent store "Paragraph") in
  let flipped = ref 0 in
  Array.iteri
    (fun i oid ->
      if i mod every = 0 then (
        incr flipped;
        let wc =
          match Object_store.peek_prop store oid "word_count" with
          | Value.Int n when n > 500 -> 120 + (i mod 50)
          | _ -> 620 + (i mod 50)
        in
        Engine.update engine oid ~prop:"word_count" (Value.Int wc);
        (* every other rewrite keeps the query word, the rest drop it *)
        let content =
          if i mod (2 * every) = 0 then
            Printf.sprintf "revised paragraph %d about Implementation details" i
          else Printf.sprintf "revised paragraph %d with fresh wording" i
        in
        Engine.update engine oid ~prop:"content" (Value.Str content)))
    paras;
  (!flipped, Array.length paras)

(* recompute every document's largeParagraphs set from base data *)
let recomputed_large_sets store =
  let want = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match Object_store.peek_prop store p "word_count" with
      | Value.Int n when n > 500 -> (
        match Object_store.peek_prop store p "section" with
        | Value.Obj s -> (
          match Object_store.peek_prop store s "document" with
          | Value.Obj d ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt want d) in
            Hashtbl.replace want d (Value.Obj p :: cur)
          | _ -> ())
        | _ -> ())
      | _ -> ())
    (Object_store.extent store "Paragraph");
  want

let large_sets_consistent store =
  let want = recomputed_large_sets store in
  List.for_all
    (fun d ->
      let expected =
        Value.set (Option.value ~default:[] (Hashtbl.find_opt want d))
      in
      let actual =
        match Object_store.peek_prop store d "largeParagraphs" with
        | Value.Set _ as s -> s
        | _ -> Value.Set []
      in
      Value.equal expected actual)
    (Object_store.extent store "Document")

(* ------------------------------------------------------------------ *)

let run_gate ~n_docs ~seed =
  Printf.printf
    "== DML gate: maintained database vs rebuild-from-scratch oracle ==\n";
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let store = db.Db.store in
  let engine = Engine.generate db in
  Counters.reset_maintenance (Db.counters db);

  (* warm the plan cache *)
  List.iter (fun (_, q) -> ignore (Engine.run_optimized engine q)) queries;

  let (flipped, total), dt_updates =
    time (fun () -> flip_paragraphs engine store ~every:8)
  in
  Printf.printf "flipped %d of %d paragraphs (%.1f%%) in %.1f ms\n" flipped
    total
    (100. *. float_of_int flipped /. float_of_int total)
    (dt_updates *. 1000.);
  check "update workload flips >= 10% of paragraphs"
    (float_of_int flipped >= 0.10 *. float_of_int total);

  (* rebuild-from-scratch oracle: save to a paged database directory,
     reload (indexes, statistics and implied sets re-derived from base
     data), fresh optimizer *)
  let oracle_db =
    let dir = Filename.temp_file "soqm_dml" ".db" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Unix.rmdir dir)
      (fun () ->
        Db.save db dir;
        Db.load dir)
  in
  let oracle_engine = Engine.generate oracle_db in

  List.iter
    (fun (name, q) ->
      let live = Engine.run_optimized engine q in
      let oracle = Engine.run_optimized oracle_engine q in
      let reference = Engine.run_logical_reference db q in
      check
        (Printf.sprintf "%s: maintained == rebuilt oracle" name)
        (A.Relation.equal live.Engine.result oracle.Engine.result);
      check
        (Printf.sprintf "%s: maintained == reference evaluator" name)
        (A.Relation.equal live.Engine.result reference))
    queries;

  check "largeParagraphs sets match recomputation from base data"
    (large_sets_consistent store);

  (* plan cache: repeated queries must mostly hit, and hits must return
     the physically identical result (search loop skipped) *)
  let h0, m0 = Engine.cache_stats engine in
  for _ = 1 to 30 do
    List.iter (fun (_, q) -> ignore (Engine.run_optimized engine q)) queries
  done;
  let hits, misses = Engine.cache_stats engine in
  let rate =
    float_of_int hits /. float_of_int (max 1 (hits + misses))
  in
  Printf.printf
    "plan cache: %d hit(s) / %d miss(es) overall (%.1f%% hit rate; %d/%d in \
     the repeat phase)\n"
    hits misses (100. *. rate) (hits - h0) (misses - m0);
  check "plan-cache hit rate >= 90%" (rate >= 0.90);
  let r1 = Engine.optimize_query engine (snd (List.hd queries)) in
  let r2 = Engine.optimize_query engine (snd (List.hd queries)) in
  check "cache hit returns the identical result (no re-search)" (r1 == r2);
  let c = Counters.snapshot (Db.counters db) in
  let hits', misses' = Engine.cache_stats engine in
  check "counters agree with engine cache stats"
    (Counters.plan_cache_hits c = hits' && Counters.plan_cache_misses c = misses');
  Format.printf "%a@." Counters.pp_maintenance c;
  (match Db.maintenance db with
  | Some m ->
    Printf.printf "epoch %d, %d recollect(s), staleness %.3f\n"
      (Soqm_maintenance.Maintenance.epoch m)
      (Soqm_maintenance.Maintenance.recollects m)
      (Soqm_maintenance.Maintenance.staleness m)
  | None -> ());
  dt_updates

(* ------------------------------------------------------------------ *)
(* EXPERIMENTS tables                                                  *)
(* ------------------------------------------------------------------ *)

let throughput_table ~n_docs ~seed dt_incremental =
  Printf.printf "\n== update throughput: incremental vs full rebuild ==\n";
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let n_updates =
    2 * ((Object_store.extent_size db.Db.store "Paragraph" + 7) / 8)
  in
  let _, dt_refresh = time (fun () -> Db.refresh db) in
  Printf.printf "%-34s %10s %14s\n" "strategy" "time(ms)" "updates/s";
  Printf.printf "%-34s %10.1f %14.0f\n"
    (Printf.sprintf "incremental (%d updates)" n_updates)
    (dt_incremental *. 1000.)
    (float_of_int n_updates /. dt_incremental);
  Printf.printf "%-34s %10.1f %14s\n" "one full refresh (rebuild all)"
    (dt_refresh *. 1000.) "-";
  Printf.printf
    "(a full rebuild after every update would cost %.0fx the incremental \
     path)\n"
    (dt_refresh *. float_of_int n_updates /. dt_incremental)

let mixed_workload_table ~n_docs ~seed =
  Printf.printf "\n== mixed read/write workload (300 ops) ==\n";
  Printf.printf "%-12s %10s %12s %12s %10s\n" "write frac" "time(ms)"
    "cache hits" "cache miss" "hit rate";
  List.iter
    (fun write_frac ->
      let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
      let engine = Engine.generate db in
      let paras =
        Array.of_list (Object_store.extent db.Db.store "Paragraph")
      in
      let n_ops = 300 in
      let _, dt =
        time (fun () ->
            for i = 0 to n_ops - 1 do
              if i * write_frac mod 100 < write_frac then (
                let oid = paras.(i * 37 mod Array.length paras) in
                let wc =
                  match
                    Object_store.peek_prop db.Db.store oid "word_count"
                  with
                  | Value.Int n when n > 500 -> 150
                  | _ -> 650
                in
                Engine.update engine oid ~prop:"word_count" (Value.Int wc))
              else
                ignore
                  (Engine.run_optimized engine
                     (snd (List.nth queries (i mod List.length queries))))
            done)
      in
      let hits, misses = Engine.cache_stats engine in
      Printf.printf "%11d%% %10.1f %12d %12d %9.1f%%\n" write_frac (dt *. 1000.)
        hits misses
        (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses))))
    [ 0; 10; 30 ]

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let int_flag flag default =
    let n = ref default in
    Array.iteri
      (fun i a ->
        if String.equal a flag && i + 1 < Array.length Sys.argv then
          n := int_of_string Sys.argv.(i + 1))
      Sys.argv;
    !n
  in
  let n_docs = int_flag "--docs" 100 in
  let seed = int_flag "--seed" Datagen.default.Datagen.seed in
  let dt_updates = run_gate ~n_docs ~seed in
  if not assert_mode then (
    throughput_table ~n_docs ~seed dt_updates;
    mixed_workload_table ~n_docs ~seed);
  if !failures > 0 then (
    Printf.printf "\n%d check(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "\nall checks passed\n"
