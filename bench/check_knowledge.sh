#!/bin/sh
# Knowledge-compiler gate: build, run the unit suites, then assert the
# saturation + bounded-checking bounds and refresh BENCH_knowledge.json:
# the generated word-count family saturates to >= 100 derived rules
# without truncation, the checker accepts every shipped declared rule
# and refutes all six seeded-unsound mutations at the default bound,
# the saturated family engine matches the naive evaluator exactly on
# the EXP-A mix, and derived rewrites cut the charged cost of the
# derived-threshold query >= 2x.  Single-core safe: the only speedup
# gate is counter-based (deterministic), so it is enforced on every
# host.  `dune runtest` carries the same binary at n_docs=120.
set -eu
cd "$(dirname "$0")/.."
dune build
dune runtest
dune exec bench/knowledge.exe -- --assert --docs 400 --json BENCH_knowledge.json "$@"
