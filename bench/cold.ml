(* Cold-start benchmark and CI gate for the PR-9 performance layer.

   Two claims, both single-core safe:

   1. O(dirty) cold opens: [Db.load] on a directory whose [derived.idx]
      image matches the checkpoint stamp versus the rebuild-from-extent
      baseline (same directory, image removed), at n_docs=10k.  Both
      paths pay the same record-materialization floor (open the
      directory, scan every segment, import into the in-memory store),
      so the bench measures that floor separately with the public API
      and gates on the derived phase it isolates: restoring the
      persisted hash/sorted/inverted indexes, implication sets and
      statistics must be >= 5x faster than rebuilding them all from a
      full extent scan.  End-to-end open times are reported alongside.
      The 5x bound is enforced at n_docs >= 10000 (the claim's scale);
      smaller runs report it but gate only locality and parity.

   2. Clustered placement halves cold path-query page reads: after the
      bulk load, documents keep growing — one new paragraph per
      document per round, round-robin, the worst case for
      insertion-order placement (every round's appends interleave all
      documents onto the same fill pages).  With placement on, each
      paragraph lands on its section's cluster page instead.  The page
      footprint of one document's paragraph set ([Store.locate_pages],
      the model behind the [pages=] column of [explain --analyze
      --db]) must be >= 2x smaller, summed over a document sample.

   Plus the usual oracle: the EXP-A query mix on the fast-opened
   database must match the in-memory database exactly.

   Run with:     dune exec bench/cold.exe
   Assert mode:  dune exec bench/cold.exe -- --assert [--docs N] [--seed N]
   (exit code 1 when a bound is violated)

   Emits BENCH_cold.json; [--seed N] is shared across all benches. *)

open Soqm_vml
open Soqm_core
module A = Soqm_algebra
module Store = Soqm_disk.Store
module Persist = Soqm_maintenance.Persist

(* the EXP-A mix of bench/storage.ml *)
let queries =
  [
    ( "worked example Q (E1+E2+E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'" );
    ( "title lookup (E2)",
      "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'" );
    ( "large paragraphs (Implications)",
      "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" );
    ( "section/document join (E3/E4)",
      "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
       WHERE s.document == d AND d.title == 'Query Optimization'" );
    ( "text containment (E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation')" );
  ]

(* gates *)
let min_open_speedup = 5.0
let min_locality_ratio = 2.0

let failures = ref 0

let check name ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %s\n" name)
  else Printf.printf "ok   %s\n" name

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let with_temp_dir prefix f =
  let dir = Filename.temp_file prefix ".db" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun entry -> Sys.remove (Filename.concat dir entry))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

(* ------------------------------------------------------------------ *)
(* Growth workload: interleaved paragraph appends                      *)
(* ------------------------------------------------------------------ *)

(* One paragraph per document per round, iterating documents in order
   within each round — each round's appends interleave every document.
   This is how a corpus actually grows, and the worst case for
   insertion-order placement. *)
let grow_documents db ~rounds =
  let store = db.Db.store in
  let docs = Object_store.extent store "Document" in
  (* first section of each document *)
  let first_sec = Hashtbl.create (List.length docs) in
  List.iter
    (fun s ->
      match
        (Object_store.get_prop store s "document",
         Object_store.get_prop store s "number")
      with
      | Value.Obj d, Value.Int 0 -> Hashtbl.replace first_sec (Oid.id d) s
      | _ -> ())
    (Object_store.extent store "Section");
  let added = ref 0 in
  for r = 1 to rounds do
    List.iter
      (fun d ->
        match Hashtbl.find_opt first_sec (Oid.id d) with
        | None -> ()
        | Some sec ->
          incr added;
          ignore
            (Object_store.create_object store ~cls:"Paragraph"
               [
                 ("number", Value.Int (100 + r));
                 ("section", Value.Obj sec);
                 ( "content",
                   Value.Str (Printf.sprintf "appended round %d update " r) );
                 ("word_count", Value.Int (20 + ((r * 37) mod 400)));
               ]))
      docs
  done;
  !added

(* paragraph OID sets per document, from the in-memory oracle *)
let paragraphs_by_document db =
  let store = db.Db.store in
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun p ->
      match Object_store.get_prop store p "section" with
      | Value.Obj s -> (
        match Object_store.get_prop store s "document" with
        | Value.Obj d ->
          Hashtbl.replace tbl (Oid.id d)
            (p :: Option.value ~default:[] (Hashtbl.find_opt tbl (Oid.id d)))
        | _ -> ())
      | _ -> ())
    (Object_store.extent store "Paragraph");
  tbl

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_cold.json)                                     *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~paras ~seed ~cores ~fast_ms ~rebuild_ms
    ~floor_ms ~restore_ms ~derived_rebuild_ms ~open_speedup ~total_speedup
    ~gate_enforced ~sample_docs ~clustered_pages ~scattered_pages ~ratio
    ~divergences =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"cold\",\n\
    \  \"n_docs\": %d,\n\
    \  \"paragraphs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"cold_open\": {\"total_fast_ms\": %.1f, \"total_rebuild_ms\": %.1f, \
     \"total_speedup\": %.2f, \"floor_ms\": %.1f, \"derived_restore_ms\": \
     %.1f, \"derived_rebuild_ms\": %.1f, \"speedup\": %.2f, \"bound\": \
     %.2f, \"speedup_gate_enforced\": %b},\n\
    \  \"locality\": {\"sample_docs\": %d, \"clustered_pages\": %d, \
     \"scattered_pages\": %d, \"ratio\": %.2f, \"bound\": %.2f},\n\
    \  \"parity_divergences\": %d\n\
     }\n"
    n_docs paras seed cores fast_ms rebuild_ms total_speedup floor_ms
    restore_ms derived_rebuild_ms open_speedup min_open_speedup gate_enforced
    sample_docs clustered_pages scattered_pages ratio min_locality_ratio
    divergences;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 10_000 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_cold.json" Fun.id in
  let reps = arg_value "--reps" 2 int_of_string in
  let rounds = arg_value "--rounds" 4 int_of_string in
  let sample = arg_value "--sample" 50 int_of_string in
  let cores = Domain.recommended_domain_count () in
  let db, dt_gen =
    time (fun () -> Db.create ~params:{ Datagen.default with n_docs; seed } ())
  in
  let added, dt_grow = time (fun () -> grow_documents db ~rounds) in
  let paras = Object_store.extent_size db.Db.store "Paragraph" in
  Printf.printf
    "cold-start bench (n_docs=%d, %d paragraphs after %d growth rounds, %d \
     core(s))\n"
    n_docs paras rounds cores;
  Printf.printf "generated in %.1f s, appended %d paragraphs in %.1f s\n\n"
    dt_gen added dt_grow;

  with_temp_dir "soqm_cold_clustered" @@ fun dir_c ->
  with_temp_dir "soqm_cold_scattered" @@ fun dir_s ->
  (* clustered export: Db.save inserts each record with placement on
     (the default), so paragraphs land on their section's cluster pages
     even though the export stream interleaves the growth appends *)
  let (), dt_save = time (fun () -> Db.save db dir_c) in
  (* insertion-order baseline: identical record stream, placement off *)
  let dump = Object_store.export db.Db.store in
  let sdisk = Store.create ~schema:(Object_store.dump_schema dump) dir_s in
  Store.set_placement sdisk false;
  Store.bulk_load sdisk
    ~next_id:(Object_store.dump_next_id dump)
    (Object_store.dump_objects dump);
  Store.close ~checkpoint:false sdisk;
  Printf.printf "saved clustered image in %.1f s\n\n" dt_save;

  (* -- claim 2: path-query page footprint ------------------------- *)
  let by_doc = paragraphs_by_document db in
  let sample_ids =
    List.filteri (fun i _ -> i < sample) (Object_store.extent db.Db.store "Document")
  in
  let footprint dir =
    let d = Store.open_dir dir in
    let total =
      List.fold_left
        (fun acc doc ->
          match Hashtbl.find_opt by_doc (Oid.id doc) with
          | Some oids -> acc + Store.locate_pages d oids
          | None -> acc)
        0 sample_ids
    in
    Store.close ~checkpoint:false d;
    total
  in
  let clustered_pages = footprint dir_c in
  let scattered_pages = footprint dir_s in
  let ratio = float_of_int scattered_pages /. float_of_int (max 1 clustered_pages) in
  Printf.printf
    "path-query footprint over %d documents: clustered %d page(s), \
     insertion-order %d page(s) (%.2fx, bound %.1fx)\n"
    (List.length sample_ids) clustered_pages scattered_pages ratio
    min_locality_ratio;
  check
    (Printf.sprintf "clustered placement reads >= %.1fx fewer pages"
       min_locality_ratio)
    (ratio >= min_locality_ratio);

  (* -- claim 1: O(dirty) cold open vs rebuild-from-extent --------- *)
  (* Best-of-reps with a level GC field: the previous rep's result (a
     whole materialized database) is released and the major heap
     compacted before each timed rep, so no rep pays the collection
     debt of the one before it — without this, restore-phase timings
     swung 2x+ between runs (the EXP-L lesson at database scale). *)
  let best f =
    let b = ref infinity in
    let last = ref None in
    for i = 1 to reps do
      last := None;
      Gc.compact ();
      let x, dt = time f in
      if i = reps then last := Some x;
      if dt < !b then b := dt
    done;
    (Option.get !last, !b *. 1000.)
  in
  (* the shared floor both opens pay: directory open (recovery, heap
     directory rebuild), the materialization scan, the in-memory store
     import — measured with the same public calls [Db.load] makes *)
  let _, floor_ms =
    best (fun () ->
        let d = Store.open_dir dir_c in
        let rows, _ = Store.scan_all ~prefetch:true d in
        let dump =
          Object_store.make_dump ~schema:(Store.schema d)
            ~next_id:(Store.next_id d) rows
        in
        let store = Object_store.import dump in
        Store.close ~checkpoint:false d;
        store)
  in
  let fast_db, fast_ms = best (fun () -> Db.load dir_c) in
  Persist.remove ~dir:dir_c;
  let _rebuilt_db, rebuild_ms = best (fun () -> Db.load dir_c) in
  let total_speedup = rebuild_ms /. fast_ms in
  let restore_ms = Float.max 1.0 (fast_ms -. floor_ms) in
  let derived_rebuild_ms = Float.max 1.0 (rebuild_ms -. floor_ms) in
  let open_speedup = derived_rebuild_ms /. restore_ms in
  Printf.printf
    "\ncold open: with derived image %.1f ms, rebuild from extent %.1f ms \
     (%.2fx end to end)\n"
    fast_ms rebuild_ms total_speedup;
  Printf.printf
    "derived state: image restore + tail replay %.1f ms, rebuild from \
     extent %.1f ms over a %.1f ms materialization floor (%.2fx, bound \
     %.1fx)\n"
    restore_ms derived_rebuild_ms floor_ms open_speedup min_open_speedup;
  (* the 5x bound is a statement about scale: below ~10k documents the
     derived phase is small in absolute terms and a few tens of ms of
     fixed cost (image decode, observer attachment) eat into the ratio,
     so smaller runs report the speedup without enforcing it *)
  let gate_enforced = n_docs >= 10_000 in
  if gate_enforced then
    check
      (Printf.sprintf "image-backed cold open >= %.1fx over index rebuild"
         min_open_speedup)
      (open_speedup >= min_open_speedup)
  else
    Printf.printf
      "note the >= %.1fx bound is enforced at n_docs >= 10000 only (got \
       %.2fx at n_docs=%d)\n"
      min_open_speedup open_speedup n_docs;

  (* -- oracle: fast-opened database = in-memory database ----------- *)
  let mem_engine = Engine.generate db in
  let fast_engine = Engine.generate fast_db in
  let divergences =
    List.fold_left
      (fun acc (name, q) ->
        let mem = Engine.run_optimized mem_engine q in
        let fast = Engine.run_optimized fast_engine q in
        let same = A.Relation.equal mem.Engine.result fast.Engine.result in
        check (Printf.sprintf "%s: fast open == memory" name) same;
        if same then acc else acc + 1)
      0 queries
  in

  write_json json_path ~n_docs ~paras ~seed ~cores ~fast_ms ~rebuild_ms
    ~floor_ms ~restore_ms ~derived_rebuild_ms ~open_speedup ~total_speedup
    ~gate_enforced
    ~sample_docs:(List.length sample_ids)
    ~clustered_pages ~scattered_pages ~ratio ~divergences;
  Printf.printf "wrote %s\n" json_path;
  ignore assert_mode;
  if !failures > 0 then (
    Printf.printf "\n%d check(s) FAILED\n" !failures;
    exit 1)
  else Printf.printf "\nall checks passed\n"
