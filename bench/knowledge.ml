(* Knowledge-compiler benchmark and CI gate for the saturation +
   bounded-checking subsystem.

   Three claims, all single-core safe (the only "speedup" gate is
   counter-based, so it is deterministic and core-independent):

   1. Saturation scale: the generated word-count family (O(n) declared
      specifications) closes to >= 100 derived rules within
      [Saturate.default_config]'s caps, without truncation, in bounded
      wall-clock (reported, not gated).

   2. Checker matrix: the bounded counterexample checker accepts every
      shipped declared specification of the document knowledge base and
      refutes every seeded-unsound mutation of [Rulegen.mutations] at
      the default bound, printing a minimal witness.

   3. Saturation pays: on a query whose condition matches no declared
      antecedent ([word_count > a higher threshold]), the saturated
      family engine reaches the maintained large-paragraphs set through
      derived implications and must beat the naive evaluator's charged
      cost by >= 2x — while agreeing with it exactly, on the whole
      EXP-A mix plus the threshold queries.

   Run with:     dune exec bench/knowledge.exe
   Assert mode:  dune exec bench/knowledge.exe -- --assert [--docs N] [--seed N]
   (exit code 1 when a bound is violated)

   Emits BENCH_knowledge.json; [--seed N] is shared across all benches. *)

open Soqm_vml
open Soqm_core
module Saturate = Soqm_knowledge.Saturate
module Check = Soqm_knowledge.Check
module Rulegen = Soqm_knowledge.Rulegen

(* the EXP-A mix of bench/dml.ml *)
let exp_a =
  [
    ( "worked example Q (E1+E2+E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation') AND (p->document()).title == \
       'Query Optimization'" );
    ( "title lookup (E2)",
      "ACCESS d FROM d IN Document WHERE d.title == 'Query Optimization'" );
    ( "large paragraphs (Implications)",
      "ACCESS p FROM p IN Paragraph WHERE p->wordCount() > 500" );
    ( "section/document join (E3/E4)",
      "ACCESS [n: s.number, t: d.title] FROM s IN Section, d IN Document \
       WHERE s.document == d AND d.title == 'Query Optimization'" );
    ( "text containment (E5)",
      "ACCESS p FROM p IN Paragraph WHERE \
       p->contains_string('Implementation')" );
  ]

(* reachable only through derived rules: no declared antecedent matches *)
let derived_query = "ACCESS p FROM p IN Paragraph WHERE p.word_count > 800"

(* gates *)
let min_derived = 100
let min_cost_ratio = 2.0

let failures = ref 0

let check name ok =
  if not ok then (
    incr failures;
    Printf.printf "FAIL %s\n" name)
  else Printf.printf "ok   %s\n" name

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let arg_value flag default parse =
  let rec go = function
    | f :: v :: _ when String.equal f flag -> parse v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (Array.to_list Sys.argv)

(* ------------------------------------------------------------------ *)
(* JSON emission (BENCH_knowledge.json)                                 *)
(* ------------------------------------------------------------------ *)

let write_json path ~n_docs ~seed ~cores ~declared ~derived ~subsumed ~rounds
    ~truncated ~saturate_ms ~rules_sound ~rules_total ~mutations_refuted
    ~mutations_total ~models_checked ~check_ms ~divergences ~naive_cost
    ~opt_cost ~ratio =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"knowledge\",\n\
    \  \"n_docs\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"saturation\": {\"declared\": %d, \"derived\": %d, \"subsumed\": %d, \
     \"rounds\": %d, \"truncated\": %b, \"ms\": %.1f, \"min_derived\": %d},\n\
    \  \"checker\": {\"rules_sound\": %d, \"rules_total\": %d, \
     \"mutations_refuted\": %d, \"mutations_total\": %d, \"models_checked\": \
     %d, \"ms\": %.1f},\n\
    \  \"optimizer\": {\"parity_divergences\": %d, \"naive_cost\": %.1f, \
     \"saturated_cost\": %.1f, \"cost_ratio\": %.2f, \"bound\": %.2f, \
     \"speedup_gate_enforced\": true}\n\
     }\n"
    n_docs seed cores declared derived subsumed rounds truncated saturate_ms
    min_derived rules_sound rules_total mutations_refuted mutations_total
    models_checked check_ms divergences naive_cost opt_cost ratio
    min_cost_ratio;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let assert_mode = Array.exists (String.equal "--assert") Sys.argv in
  let n_docs = arg_value "--docs" 200 int_of_string in
  let seed = arg_value "--seed" Datagen.default.Datagen.seed int_of_string in
  let json_path = arg_value "--json" "BENCH_knowledge.json" Fun.id in
  let cores = Domain.recommended_domain_count () in
  let schema = Doc_schema.schema in
  Printf.printf "knowledge bench (n_docs=%d, seed=%d, %d core(s))\n\n" n_docs
    seed cores;

  (* -- claim 1: saturation scale ---------------------------------- *)
  let family = Doc_knowledge.specs () @ Rulegen.family () in
  let (_, stats), saturate_s = time (fun () -> Saturate.run schema family) in
  Printf.printf
    "saturation: %d declared -> %d derived (%d subsumed) in %d round(s), \
     %.0f ms%s\n"
    stats.Saturate.declared stats.Saturate.derived stats.Saturate.subsumed
    stats.Saturate.rounds (saturate_s *. 1000.)
    (if stats.Saturate.truncated then " [TRUNCATED]" else "");
  check
    (Printf.sprintf "family saturates to >= %d derived rules" min_derived)
    (stats.Saturate.derived >= min_derived);
  check "saturation closes without truncation" (not stats.Saturate.truncated);

  (* -- claim 2: the checker matrix -------------------------------- *)
  let install store =
    Doc_schema.install_internal_methods store;
    Doc_schema.install_scan_methods store
  in
  let declared = Doc_knowledge.specs () in
  let counters = Counters.create () in
  let checked, check_s =
    time (fun () ->
        Check.check_specs ~install ~counters ~trusted:declared schema declared)
  in
  let sound =
    List.length
      (List.filter
         (fun (_, v) -> match v with Check.Sound _ -> true | _ -> false)
         checked)
  in
  Printf.printf
    "\nchecker: %d/%d declared rules sound (%d models), %.0f ms\n" sound
    (List.length checked)
    (Counters.models_checked counters)
    (check_s *. 1000.);
  List.iter
    (fun (spec, v) ->
      match v with
      | Check.Sound _ -> ()
      | v ->
        Printf.printf "  %s: %s\n"
          (Soqm_semantics.Equivalence.name spec)
          (Format.asprintf "%a" Check.pp_verdict v))
    checked;
  check "checker accepts every shipped declared rule"
    (sound = List.length checked);
  let mutations = Rulegen.mutations () in
  let refuted_list, refute_s =
    time (fun () ->
        List.filter
          (fun (label, spec) ->
            match
              Check.check_spec ~install ~counters ~trusted:declared schema spec
            with
            | Check.Refuted w ->
              Printf.printf "  refuted %-20s by model %d (%d obj/class)\n"
                label w.Check.model_index w.Check.model_size;
              true
            | _ ->
              Printf.printf "  MISSED %s\n" label;
              false)
          mutations)
  in
  let refuted = List.length refuted_list in
  Printf.printf "checker: refuted %d/%d seeded-unsound mutations, %.0f ms\n"
    refuted (List.length mutations) (refute_s *. 1000.);
  check "checker refutes every seeded-unsound mutation"
    (refuted = List.length mutations);

  (* -- claim 3: saturation pays, and stays correct ----------------- *)
  let db = Db.create ~params:{ Datagen.default with n_docs; seed } () in
  let config =
    { Soqm_optimizer.Search.default_config with max_variants = 400 }
  in
  let engine =
    Engine.generate ~extra_specs:(Rulegen.family ()) ~saturate:true ~config db
  in
  let divergences = ref 0 in
  List.iter
    (fun (name, q) ->
      let naive = (Engine.run_naive db q).Engine.result in
      let opt = (Engine.run_optimized engine q).Engine.result in
      if not (Soqm_algebra.Relation.equal naive opt) then begin
        incr divergences;
        Printf.printf "  DIVERGENCE on %s\n" name
      end)
    (exp_a @ [ ("derived threshold", derived_query) ]);
  Printf.printf "\nparity: %d divergence(s) on the EXP-A mix + threshold\n"
    !divergences;
  check "saturated engine agrees with naive everywhere" (!divergences = 0);
  let naive_r = Engine.run_naive db derived_query in
  let opt_r = Engine.run_optimized engine derived_query in
  let naive_cost = Counters.total_cost naive_r.Engine.counters in
  let opt_cost = Counters.total_cost opt_r.Engine.counters in
  let ratio = naive_cost /. Float.max 1. opt_cost in
  Printf.printf
    "derived-rule query [%s]:\n  naive cost %.1f, saturated cost %.1f \
     (%.2fx, bound %.1fx)\n"
    derived_query naive_cost opt_cost ratio min_cost_ratio;
  check
    (Printf.sprintf "derived rewrites cut charged cost >= %.1fx"
       min_cost_ratio)
    (ratio >= min_cost_ratio);

  write_json json_path ~n_docs ~seed ~cores ~declared:stats.Saturate.declared
    ~derived:stats.Saturate.derived ~subsumed:stats.Saturate.subsumed
    ~rounds:stats.Saturate.rounds ~truncated:stats.Saturate.truncated
    ~saturate_ms:(saturate_s *. 1000.) ~rules_sound:sound
    ~rules_total:(List.length checked) ~mutations_refuted:refuted
    ~mutations_total:(List.length mutations)
    ~models_checked:(Counters.models_checked counters)
    ~check_ms:((check_s +. refute_s) *. 1000.)
    ~divergences:!divergences ~naive_cost ~opt_cost ~ratio;
  Printf.printf "\nwrote %s\n" json_path;

  if assert_mode && !failures > 0 then begin
    Printf.printf "\n%d gate(s) FAILED\n" !failures;
    exit 1
  end
